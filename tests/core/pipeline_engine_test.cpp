// Pipelined-engine tests (DESIGN.md §15): the overlap scheduler, the
// staging-arena commit path, and the bit-identity contract between the
// pipelined and the serial schedule.
//
// The golden expectations reuse the engine pins from engine_test.cpp
// (recorded from the pre-engine driver): the pipelined engine must land on
// exactly those values at every thread count, with speculation enabled and
// disabled — the speculative batch uses the same RNG substreams and
// stitched order as the grow() it replaces, so no bit may move.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "community/threshold_policy.h"
#include "core/engine.h"
#include "core/imcaf.h"
#include "core/maf.h"
#include "core/maxr_solver.h"
#include "core/ubg.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_pool.h"
#include "test_support.h"
#include "util/context.h"
#include "util/thread_pool.h"

namespace imc {
namespace {

class PipelineEngineTest : public ::testing::Test {
 protected:
  static Graph make_graph() {
    Rng rng(77);
    BarabasiAlbertConfig config;
    config.nodes = 150;
    config.attach = 3;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_weighted_cascade(edges, config.nodes);
    return Graph(config.nodes, edges);
  }

  static CommunitySet make_communities(std::uint32_t h) {
    CommunitySet communities = test::chunk_communities(150, 6);
    apply_constant_thresholds(communities, h);
    apply_population_benefits(communities);
    return communities;
  }

  /// The engine golden-pin configuration (see engine_test.cpp), with the
  /// pipeline toggled per test.
  static ImcafConfig pinned_config(bool pipeline) {
    ImcafConfig config;
    config.max_samples = 6000;
    config.seed = 2024;
    config.parallel_sampling = false;
    config.pipeline = pipeline;
    return config;
  }

  Graph graph_ = make_graph();
};

struct GoldenPin {
  std::uint32_t h;
  MaxrAlgorithm algorithm;
  std::vector<NodeId> seeds;
  double c_hat;  // exact hexfloat value on the final pool
};

// The UBG/MAF engine pins from engine_test.cpp (same recording).
const std::vector<GoldenPin>& golden_pins() {
  static const std::vector<GoldenPin> pins = {
      {1, MaxrAlgorithm::kUbg, {1, 3, 0, 6, 8, 40, 97, 10},
       0x1.2373333333333p+7},
      {1, MaxrAlgorithm::kMaf, {1, 3, 0, 8, 10, 6, 2, 4}, 0x1.22cp+7},
      {2, MaxrAlgorithm::kUbg, {1, 3, 0, 8, 6, 10, 20, 40}, 0x1.fap+6},
      {2, MaxrAlgorithm::kMaf, {1, 3, 0, 8, 10, 6, 2, 4},
       0x1.f59999999999ap+6},
  };
  return pins;
}

TEST_F(PipelineEngineTest, GoldenPinsHoldAtEveryThreadCountOnAndOff) {
  for (const GoldenPin& pin : golden_pins()) {
    const CommunitySet communities = make_communities(pin.h);
    const auto solver = make_maxr_solver(pin.algorithm);
    for (const unsigned threads : {1U, 2U, 8U}) {
      ThreadPool workers(threads);
      ExecutionContext context;
      context.workers = &workers;
      for (const bool pipeline : {true, false}) {
        ImcEngine engine(graph_, communities, pinned_config(pipeline),
                         context);
        const ImcafResult result = engine.solve(8, *solver);
        const std::string where = "h=" + std::to_string(pin.h) + " " +
                                  to_string(pin.algorithm) + " threads=" +
                                  std::to_string(threads) +
                                  (pipeline ? " pipelined" : " serial");
        EXPECT_EQ(result.seeds, pin.seeds) << where;
        EXPECT_EQ(result.samples_used, 6000U) << where;
        EXPECT_EQ(result.stop_stages, 3U) << where;
        EXPECT_EQ(result.c_hat, pin.c_hat) << where;
        EXPECT_EQ(engine.pool().grow_epoch(),
                  (RicPool::PoolEpoch{6000, 3})) << where;
      }
    }
  }
}

TEST_F(PipelineEngineTest, PipelinedRunBitMatchesSerialRun) {
  // Full-result comparison (not just the pinned fields): every numeric
  // output, including the independent Dagum estimate, must be bitwise
  // equal between the two schedules.
  for (const std::uint32_t h : {1U, 2U}) {
    const CommunitySet communities = make_communities(h);
    const UbgSolver solver;
    for (const unsigned threads : {1U, 2U, 8U}) {
      ThreadPool workers(threads);
      ExecutionContext context;
      context.workers = &workers;
      ImcEngine pipelined(graph_, communities, pinned_config(true), context);
      ImcEngine serial(graph_, communities, pinned_config(false), context);
      const ImcafResult a = pipelined.solve(8, solver);
      const ImcafResult b = serial.solve(8, solver);
      const std::string where =
          "h=" + std::to_string(h) + " threads=" + std::to_string(threads);
      EXPECT_EQ(a.seeds, b.seeds) << where;
      EXPECT_EQ(a.c_hat, b.c_hat) << where;
      EXPECT_EQ(a.estimated_benefit, b.estimated_benefit) << where;
      EXPECT_EQ(a.samples_used, b.samples_used) << where;
      EXPECT_EQ(a.stop_stages, b.stop_stages) << where;
      EXPECT_EQ(pipelined.pool().grow_epoch(), serial.pool().grow_epoch())
          << where;
      EXPECT_EQ(b.speculative_samples_committed, 0U) << where;
      EXPECT_EQ(b.overlap_seconds, 0.0) << where;
    }
  }
}

TEST_F(PipelineEngineTest, PipelinedWarmStartMatchesColdAcrossThreads) {
  // The warm-start pins with the pipeline on: resume across stages and
  // speculative growth compose without moving a bit.
  for (const std::uint32_t h : {1U, 2U}) {
    const CommunitySet communities = make_communities(h);
    const UbgSolver solver;
    for (const unsigned threads : {1U, 2U, 8U}) {
      ThreadPool workers(threads);
      ExecutionContext context;
      context.workers = &workers;
      ImcafConfig cold_config = pinned_config(true);
      cold_config.warm_start = false;
      ImcEngine warm_engine(graph_, communities, pinned_config(true), context);
      ImcEngine cold_engine(graph_, communities, cold_config, context);
      const ImcafResult warm = warm_engine.solve(8, solver);
      const ImcafResult cold = cold_engine.solve(8, solver);
      const std::string where =
          "h=" + std::to_string(h) + " threads=" + std::to_string(threads);
      EXPECT_EQ(warm.seeds, cold.seeds) << where;
      EXPECT_EQ(warm.c_hat, cold.c_hat) << where;
      EXPECT_EQ(warm.estimated_benefit, cold.estimated_benefit) << where;
      EXPECT_EQ(warm.samples_used, cold.samples_used) << where;
      EXPECT_EQ(warm.stop_stages, cold.stop_stages) << where;
    }
  }
}

TEST_F(PipelineEngineTest, CommitStagedIsBitIdenticalToGrow) {
  const CommunitySet communities = make_communities(2);
  ThreadPool workers(3);

  RicPool grown(graph_, communities);
  grown.grow(300, 2024, /*parallel=*/false);
  grown.grow(200, 2024, /*parallel=*/true, &workers);

  RicPool staged_pool(graph_, communities);
  staged_pool.grow(300, 2024, /*parallel=*/false);
  PoolStagingArena staging;
  staged_pool.stage_samples(200, 2024, /*parallel=*/true, &workers, {},
                            staging);
  EXPECT_TRUE(staging.complete());
  EXPECT_EQ(staging.base(), 300U);
  EXPECT_EQ(staging.count(), 200U);
  EXPECT_EQ(staging.staged_count(), 200U);
  // Staging must not touch the live pool.
  EXPECT_EQ(staged_pool.size(), 300U);
  EXPECT_EQ(staged_pool.grow_epoch(), (RicPool::PoolEpoch{300, 1}));
  staged_pool.commit_staged(std::move(staging), /*parallel=*/true, &workers);
  EXPECT_EQ(staging.staged_count(), 0U);  // consumed

  // Content and watermark both bit-match the direct growth.
  EXPECT_EQ(staged_pool.grow_epoch(), grown.grow_epoch());
  const RicPool::SnapshotView a = staged_pool.snapshot_view();
  const RicPool::SnapshotView b = grown.snapshot_view();
  ASSERT_EQ(a.thresholds.size(), b.thresholds.size());
  for (std::size_t i = 0; i < a.thresholds.size(); ++i) {
    ASSERT_EQ(a.thresholds[i], b.thresholds[i]) << "sample " << i;
    ASSERT_EQ(a.source_community[i], b.source_community[i]) << "sample " << i;
  }
  ASSERT_EQ(a.sample_arena.size(), b.sample_arena.size());
  for (std::size_t i = 0; i < a.sample_arena.size(); ++i) {
    ASSERT_EQ(a.sample_arena[i], b.sample_arena[i]) << "arena entry " << i;
  }
  ASSERT_EQ(a.sample_offsets.size(), b.sample_offsets.size());
  for (std::size_t i = 0; i < a.sample_offsets.size(); ++i) {
    ASSERT_EQ(a.sample_offsets[i], b.sample_offsets[i]) << "offset " << i;
  }
  ASSERT_EQ(a.touches.size(), b.touches.size());
  for (std::size_t i = 0; i < a.touches.size(); ++i) {
    ASSERT_EQ(a.touches[i].sample, b.touches[i].sample) << "touch " << i;
    ASSERT_EQ(a.touches[i].mask, b.touches[i].mask) << "touch " << i;
  }
}

TEST_F(PipelineEngineTest, CommitStagedRejectsStaleArena) {
  const CommunitySet communities = make_communities(1);
  RicPool pool(graph_, communities);
  pool.grow(100, 7, /*parallel=*/false);
  PoolStagingArena staging;
  pool.stage_samples(50, 7, /*parallel=*/false, nullptr, {}, staging);
  EXPECT_TRUE(staging.complete());
  // The pool moved on: the staged batch's base/epoch no longer match.
  pool.grow(10, 7, /*parallel=*/false);
  EXPECT_THROW(pool.commit_staged(std::move(staging)), std::invalid_argument);
  EXPECT_EQ(pool.size(), 110U);  // rejected commit left the pool untouched
}

TEST_F(PipelineEngineTest, CommitStagedRejectsCancelledStaging) {
  const CommunitySet communities = make_communities(1);
  RicPool pool(graph_, communities);
  pool.grow(100, 7, /*parallel=*/false);
  PoolStagingArena staging;
  std::atomic<std::uint64_t> polls{0};
  // Cancel after a few samples: the arena stays incomplete and partial.
  pool.stage_samples(
      50, 7, /*parallel=*/false, nullptr, [&polls] { return ++polls > 5; },
      staging);
  EXPECT_FALSE(staging.complete());
  EXPECT_LT(staging.staged_count(), 50U);
  EXPECT_EQ(pool.size(), 100U);
  EXPECT_EQ(pool.grow_epoch(), (RicPool::PoolEpoch{100, 1}));
  EXPECT_THROW(pool.commit_staged(std::move(staging)), std::invalid_argument);
}

TEST_F(PipelineEngineTest, StagedBatchEquivalenceUnderCancelAndRetry) {
  // A discarded speculation loses work, never determinism: re-staging the
  // same batch after a cancelled attempt produces the identical pool.
  const CommunitySet communities = make_communities(2);
  RicPool pool(graph_, communities);
  pool.grow(120, 99, /*parallel=*/false);

  PoolStagingArena staging;
  std::atomic<std::uint64_t> polls{0};
  pool.stage_samples(
      80, 99, /*parallel=*/false, nullptr, [&polls] { return ++polls > 10; },
      staging);
  EXPECT_FALSE(staging.complete());
  staging.clear();

  pool.stage_samples(80, 99, /*parallel=*/false, nullptr, {}, staging);
  ASSERT_TRUE(staging.complete());
  pool.commit_staged(std::move(staging), /*parallel=*/false);

  RicPool reference(graph_, communities);
  reference.grow(120, 99, /*parallel=*/false);
  reference.grow(80, 99, /*parallel=*/false);
  EXPECT_EQ(pool.grow_epoch(), reference.grow_epoch());
  const RicPool::SnapshotView a = pool.snapshot_view();
  const RicPool::SnapshotView b = reference.snapshot_view();
  ASSERT_EQ(a.sample_arena.size(), b.sample_arena.size());
  for (std::size_t i = 0; i < a.sample_arena.size(); ++i) {
    ASSERT_EQ(a.sample_arena[i], b.sample_arena[i]) << "arena entry " << i;
  }
}

TEST_F(PipelineEngineTest, MetricsRecordCommittedSpeculation) {
  const CommunitySet communities = make_communities(2);
  const UbgSolver solver;
  ThreadPool workers(2);
  RecordingMetricsSink sink;
  ExecutionContext context;
  context.workers = &workers;
  context.metrics = &sink;
  ImcEngine engine(graph_, communities, pinned_config(true), context);
  const ImcafResult result = engine.solve(8, solver);

  const std::vector<StageMetrics> rows = sink.stages();
  ASSERT_EQ(rows.size(), result.stop_stages);
  ASSERT_EQ(rows.size(), 3U);
  // Stage 1 grew synchronously; stages 2 and 3 rode committed speculation
  // (the pinned schedule never stops before the cap, so no speculation is
  // ever discarded here).
  EXPECT_FALSE(rows[0].pipelined);
  EXPECT_EQ(rows[0].speculative_samples_committed, 0U);
  std::uint64_t committed = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_TRUE(rows[i].pipelined) << "stage " << i + 1;
    EXPECT_EQ(rows[i].speculative_samples_committed, rows[i].samples_added)
        << "stage " << i + 1;
    EXPECT_EQ(rows[i].pool_size, rows[i - 1].pool_size + rows[i].samples_added)
        << "stage " << i + 1;
    EXPECT_GE(rows[i].overlap_seconds, 0.0) << "stage " << i + 1;
    EXPECT_GT(rows[i].sampling_seconds, 0.0) << "stage " << i + 1;
    committed += rows[i].speculative_samples_committed;
  }
  EXPECT_EQ(result.speculative_samples_committed, committed);
  EXPECT_EQ(result.speculative_samples_discarded, 0U);
  EXPECT_GE(result.overlap_seconds, 0.0);
  EXPECT_EQ(result.samples_used, 6000U);
}

TEST_F(PipelineEngineTest, SerialScheduleReportsNoSpeculation) {
  const CommunitySet communities = make_communities(2);
  const UbgSolver solver;
  RecordingMetricsSink sink;
  ExecutionContext context;
  context.metrics = &sink;
  ImcEngine engine(graph_, communities, pinned_config(false), context);
  const ImcafResult result = engine.solve(8, solver);
  EXPECT_EQ(result.speculative_samples_committed, 0U);
  EXPECT_EQ(result.speculative_samples_discarded, 0U);
  EXPECT_EQ(result.overlap_seconds, 0.0);
  for (const StageMetrics& row : sink.stages()) {
    EXPECT_FALSE(row.pipelined);
    EXPECT_EQ(row.overlap_seconds, 0.0);
    EXPECT_EQ(row.speculative_samples_committed, 0U);
    EXPECT_EQ(row.speculative_samples_discarded, 0U);
  }
}

TEST_F(PipelineEngineTest, CancellationDiscardsInFlightSpeculation) {
  // Cancel before the run starts: stage 1 still completes (stopping is
  // only checked after a solve), its speculation is cancelled and
  // discarded, and the result matches the serial schedule's partial
  // result bit for bit.
  const CommunitySet communities = make_communities(2);
  const UbgSolver solver;
  std::atomic<bool> cancel{true};
  ThreadPool workers(2);

  ExecutionContext cancelled_context;
  cancelled_context.workers = &workers;
  cancelled_context.cancel = &cancel;
  ImcEngine pipelined(graph_, communities, pinned_config(true),
                      cancelled_context);
  const ImcafResult a = pipelined.solve(8, solver);
  EXPECT_TRUE(a.reached_deadline);
  EXPECT_EQ(a.stop_stages, 1U);
  EXPECT_EQ(a.speculative_samples_committed, 0U);
  EXPECT_EQ(pipelined.pool().grow_epoch(),
            (RicPool::PoolEpoch{a.samples_used, 1}));

  ImcEngine serial(graph_, communities, pinned_config(false),
                   cancelled_context);
  const ImcafResult b = serial.solve(8, solver);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.c_hat, b.c_hat);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(pipelined.pool().grow_epoch(), serial.pool().grow_epoch());
}

TEST_F(PipelineEngineTest, SolveManyPipelinedMatchesSerial) {
  // Queries share one pool: the second query's stage-1 solve sees whatever
  // the first grew. Pipelining must preserve that hand-off exactly.
  const CommunitySet communities = make_communities(1);
  const UbgSolver ubg;
  const MafSolver maf;
  const std::vector<EngineQuery> queries = {{8, &ubg}, {5, &maf}};
  ThreadPool workers(2);
  ExecutionContext context;
  context.workers = &workers;
  ImcEngine pipelined(graph_, communities, pinned_config(true), context);
  ImcEngine serial(graph_, communities, pinned_config(false), context);
  const std::vector<ImcafResult> a = pipelined.solve_many(queries);
  const std::vector<ImcafResult> b = serial.solve_many(queries);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seeds, b[i].seeds) << "query " << i;
    EXPECT_EQ(a[i].c_hat, b[i].c_hat) << "query " << i;
    EXPECT_EQ(a[i].samples_used, b[i].samples_used) << "query " << i;
    EXPECT_EQ(a[i].stop_stages, b[i].stop_stages) << "query " << i;
  }
  EXPECT_EQ(pipelined.pool().grow_epoch(), serial.pool().grow_epoch());
}

}  // namespace
}  // namespace imc
