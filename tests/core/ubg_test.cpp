#include "core/ubg.h"

#include <gtest/gtest.h>

#include "community/threshold_policy.h"
#include "core/brute_force.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(Ubg, KeepsBetterOfTwoGreedySolutions) {
  const test::NonSubmodularGadget gadget(0.4);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(1500, 1);
  const UbgSolution solution = ubg_solve(pool, 2);
  EXPECT_GE(solution.c_hat, solution.from_c_hat.c_hat - 1e-12);
  EXPECT_GE(solution.c_hat, solution.from_nu.c_hat - 1e-12);
  EXPECT_EQ(solution.seeds.size(), 2U);
}

TEST(Ubg, SandwichRatioInUnitInterval) {
  const test::NonSubmodularGadget gadget(0.4);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(800, 2);
  const UbgSolution solution = ubg_solve(pool, 2);
  EXPECT_GE(solution.sandwich_ratio, 0.0);
  EXPECT_LE(solution.sandwich_ratio, 1.0 + 1e-12);
}

TEST(Ubg, RatioIsOneWhenThresholdsAreOne) {
  // Lemma 4: ĉ == ν at h = 1, so the sandwich ratio collapses to 1.
  Rng rng(3);
  BarabasiAlbertConfig config;
  config.nodes = 50;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  const Graph graph(config.nodes, edges);
  const CommunitySet communities = test::chunk_communities(50, 5);  // h = 1
  RicPool pool(graph, communities);
  pool.grow(800, 3);
  const UbgSolution solution = ubg_solve(pool, 5);
  EXPECT_NEAR(solution.sandwich_ratio, 1.0, 1e-9);
}

TEST(Ubg, NearOptimalOnSmallInstances) {
  // Data-dependent sandwich bound sanity: UBG should land well within the
  // brute-force optimum on small pools.
  const test::NonSubmodularGadget gadget(0.5);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(400, 4);
  const UbgSolution ubg = ubg_solve(pool, 2);
  const BruteForceResult best = brute_force_maxr(pool, 2);
  EXPECT_GE(ubg.c_hat,
            best.c_hat * ubg.sandwich_ratio * (1.0 - 1.0 / 2.718281828) -
                1e-9);
}

TEST(Ubg, SolverInterface) {
  UbgSolver solver;
  EXPECT_EQ(solver.name(), "UBG");
  const test::NonSubmodularGadget gadget;
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(100, 5);
  EXPECT_NEAR(solver.alpha(pool, 3), 1.0 - 1.0 / 2.718281828, 1e-6);
  const MaxrSolution solution = solver.solve(pool, 2);
  EXPECT_EQ(solution.seeds.size(), 2U);
}

}  // namespace
}  // namespace imc
