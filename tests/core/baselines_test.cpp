#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "community/threshold_policy.h"
#include "core/baselines/hbc.h"
#include "core/baselines/im_ris.h"
#include "core/baselines/ks.h"
#include "core/baselines/simple.h"
#include "test_support.h"

namespace imc {
namespace {

// ---------------------------------------------------------------- HBC ----

TEST(Hbc, ScoresHandComputed) {
  // 0 -> 1 (w 0.5), 0 -> 2 (w 0.2); C0 = {1} (h 1, b 2), C1 = {2} (h 2 -> but
  // population 1 caps at 1; use b 4). Node 0 itself is outside.
  GraphBuilder builder;
  builder.add_edge(0, 1, 0.5).add_edge(0, 2, 0.2);
  const Graph graph = builder.build();
  CommunitySet communities(3, {{1}, {2}});
  communities.set_benefit(0, 2.0);
  communities.set_benefit(1, 4.0);
  const auto scores = hbc_scores(graph, communities);
  // B(0) = 0.5·(2/1) + 0.2·(4/1) = 1.8; members score their own value.
  // Edge weights are stored as float, so compare at float precision.
  EXPECT_NEAR(scores[0], 1.8, 1e-6);
  EXPECT_NEAR(scores[1], 2.0, 1e-6);
  EXPECT_NEAR(scores[2], 4.0, 1e-6);
}

TEST(Hbc, SelectsTopK) {
  GraphBuilder builder;
  builder.add_edge(0, 1, 0.5).add_edge(0, 2, 0.2);
  const Graph graph = builder.build();
  CommunitySet communities(3, {{1}, {2}});
  communities.set_benefit(0, 2.0);
  communities.set_benefit(1, 4.0);
  const auto seeds = hbc_select(graph, communities, 2);
  EXPECT_EQ(seeds, (std::vector<NodeId>{2, 1}));
  EXPECT_THROW((void)hbc_select(graph, communities, 0), std::invalid_argument);
}

TEST(Hbc, ThresholdDiscountsValue) {
  // Same benefit, bigger threshold -> smaller beneficial connection.
  GraphBuilder builder;
  builder.add_edge(6, 0, 1.0).add_edge(7, 3, 1.0);
  const Graph graph = builder.build();
  CommunitySet communities(8, {{0, 1, 2}, {3, 4, 5}});
  communities.set_threshold(0, 1);
  communities.set_threshold(1, 3);
  const auto scores = hbc_scores(graph, communities);
  EXPECT_GT(scores[6], scores[7]);
}

// ----------------------------------------------------------------- KS ----

TEST(Ks, KnapsackPicksOptimalSubset) {
  // costs (h): 2, 3, 4; values (b): 3, 4, 5; capacity 5 -> best = {0, 1}.
  CommunitySet communities(12, {{0, 1}, {2, 3, 4}, {5, 6, 7, 8}});
  communities.set_threshold(0, 2);
  communities.set_threshold(1, 3);
  communities.set_threshold(2, 4);
  communities.set_benefit(0, 3.0);
  communities.set_benefit(1, 4.0);
  communities.set_benefit(2, 5.0);
  const KnapsackPlan plan = knapsack_communities(communities, 5);
  EXPECT_DOUBLE_EQ(plan.total_value, 7.0);
  EXPECT_EQ(plan.chosen, (std::vector<CommunityId>{0, 1}));
  EXPECT_EQ(plan.total_cost, 5U);
}

TEST(Ks, KnapsackMatchesBruteForceOnRandomInstances) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(trial + 100);
    // 6 communities with random costs in [1,4], values in [1, 10].
    std::vector<std::vector<NodeId>> groups;
    NodeId next = 0;
    std::vector<std::uint32_t> costs;
    std::vector<double> values;
    for (int c = 0; c < 6; ++c) {
      const auto cost = 1 + static_cast<std::uint32_t>(rng.below(4));
      costs.push_back(cost);
      values.push_back(1.0 + static_cast<double>(rng.below(10)));
      auto& group = groups.emplace_back();
      for (std::uint32_t i = 0; i < cost; ++i) group.push_back(next++);
    }
    CommunitySet communities(next, std::move(groups));
    for (CommunityId c = 0; c < 6; ++c) {
      communities.set_threshold(c, costs[c]);
      communities.set_benefit(c, values[c]);
    }
    const std::uint32_t capacity = 6;
    const KnapsackPlan plan = knapsack_communities(communities, capacity);

    double brute_best = 0.0;
    for (int mask = 0; mask < 64; ++mask) {
      std::uint32_t cost = 0;
      double value = 0.0;
      for (int c = 0; c < 6; ++c) {
        if (mask & (1 << c)) {
          cost += costs[c];
          value += values[c];
        }
      }
      if (cost <= capacity) brute_best = std::max(brute_best, value);
    }
    EXPECT_DOUBLE_EQ(plan.total_value, brute_best) << "trial " << trial;
  }
}

TEST(Ks, SelectSeedsFromChosenCommunities) {
  CommunitySet communities(10, {{0, 1, 2}, {3, 4, 5, 6}, {7, 8, 9}});
  communities.set_threshold(0, 2);
  communities.set_threshold(1, 4);
  communities.set_threshold(2, 3);
  communities.set_benefit(0, 5.0);
  communities.set_benefit(1, 1.0);
  communities.set_benefit(2, 4.0);
  Rng rng(1);
  const auto seeds = ks_select(communities, 5, rng);
  // Best plan: {C0 (2, 5), C2 (3, 4)} = value 9, cost 5 -> 5 seeds.
  EXPECT_EQ(seeds.size(), 5U);
  std::set<NodeId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 5U);
  int c0_members = 0, c2_members = 0;
  for (const NodeId v : seeds) {
    c0_members += (communities.community_of(v) == 0);
    c2_members += (communities.community_of(v) == 2);
  }
  EXPECT_EQ(c0_members, 2);
  EXPECT_EQ(c2_members, 3);
}

TEST(Ks, EmptyWhenNothingFits) {
  CommunitySet communities(4, {{0, 1, 2, 3}});
  communities.set_threshold(0, 4);
  Rng rng(2);
  EXPECT_TRUE(ks_select(communities, 3, rng).empty());
}

// ----------------------------------------------------------------- IM ----

TEST(ImRis, CoverageGreedyPicksStarCenter) {
  const Graph graph = test::star_graph(20, 1.0);
  RrPool pool(graph);
  Rng rng(3);
  pool.generate(300, rng);
  const auto seeds = rr_greedy_max_coverage(pool, 1);
  ASSERT_EQ(seeds.size(), 1U);
  EXPECT_EQ(seeds[0], 0U);
}

TEST(ImRis, FullSolverOnStar) {
  const Graph graph = test::star_graph(30, 0.8);
  ImRisConfig config;
  config.max_rr_sets = 50000;
  const ImRisResult result = im_ris_select(graph, 2, config);
  EXPECT_EQ(result.seeds.size(), 2U);
  EXPECT_EQ(result.seeds[0], 0U);  // hub always first
  // Spread ≈ 1 (hub) + 29·0.8 + 1 extra seed ≈ 24-25.
  EXPECT_GT(result.estimated_spread, 20.0);
  EXPECT_LT(result.estimated_spread, 30.0);
  EXPECT_GT(result.rr_sets_used, 0U);
}

TEST(ImRis, RejectsBadK) {
  const Graph graph = test::star_graph(5);
  EXPECT_THROW((void)im_ris_select(graph, 0), std::invalid_argument);
  EXPECT_THROW((void)im_ris_select(graph, 10), std::invalid_argument);
}

TEST(ImRis, TopsUpWhenPoolSparse) {
  // Edgeless graph: every RR set is a singleton; greedy still returns k
  // distinct seeds.
  GraphBuilder builder;
  builder.reserve_nodes(10);
  const Graph graph = builder.build();
  RrPool pool(graph);
  Rng rng(4);
  pool.generate(50, rng);
  const auto seeds = rr_greedy_max_coverage(pool, 5);
  const std::set<NodeId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 5U);
}

// ------------------------------------------------------------- simple ----

TEST(Simple, DegreeSelect) {
  const Graph graph = test::star_graph(10);
  const auto seeds = degree_select(graph, 3);
  ASSERT_EQ(seeds.size(), 3U);
  EXPECT_EQ(seeds[0], 0U);
  EXPECT_THROW((void)degree_select(graph, 0), std::invalid_argument);
}

TEST(Simple, RandomSelectDistinct) {
  const Graph graph = test::cycle_graph(20);
  Rng rng(5);
  const auto seeds = random_select(graph, 8, rng);
  const std::set<NodeId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 8U);
  for (const NodeId v : seeds) EXPECT_LT(v, 20U);
}

}  // namespace
}  // namespace imc
