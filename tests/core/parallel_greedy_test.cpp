// Determinism contract of the parallel selection path: for every engine and
// every thread count, parallel greedy must return the BIT-IDENTICAL seed
// vector the serial sweep produces, and repeated runs must agree with
// themselves. These tests are part of the `concurrency` ctest label and run
// under TSan in the -DIMC_SANITIZE=thread configuration.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "community/threshold_policy.h"
#include "core/greedy.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace imc {
namespace {

/// Seeded random BA graph + chunked communities + a grown pool.
RicPool make_pool(std::uint32_t h, std::uint64_t seed,
                  const Graph& graph, const CommunitySet& base) {
  CommunitySet communities = base;
  apply_constant_thresholds(communities, h);
  apply_population_benefits(communities);
  RicPool pool(graph, communities);
  pool.grow(1200, seed, /*parallel=*/false);
  return pool;
}

class ParallelGreedyTest : public ::testing::Test {
 protected:
  static Graph make_graph() {
    Rng rng(77);
    BarabasiAlbertConfig config;
    config.nodes = 150;
    config.attach = 3;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_weighted_cascade(edges, config.nodes);
    return Graph(config.nodes, edges);
  }

  Graph graph_ = make_graph();
  CommunitySet communities_ = test::chunk_communities(150, 6);
};

using Engine = GreedyResult (*)(const RicPool&, std::uint32_t,
                                const GreedyOptions&);

void expect_parallel_matches_serial(const RicPool& pool, Engine engine,
                                    const char* name) {
  const GreedyResult serial = engine(pool, 8, GreedyOptions{});
  ASSERT_EQ(serial.seeds.size(), 8U) << name;
  for (const unsigned threads : {1U, 2U, 8U}) {
    ThreadPool workers(threads);
    GreedyOptions options;
    options.parallel = true;
    options.pool = &workers;
    options.min_parallel_candidates = 1;  // force the parallel path
    const GreedyResult parallel = engine(pool, 8, options);
    EXPECT_EQ(parallel.seeds, serial.seeds)
        << name << " diverged at " << threads << " threads";
    EXPECT_DOUBLE_EQ(parallel.c_hat, serial.c_hat) << name;
    EXPECT_DOUBLE_EQ(parallel.nu, serial.nu) << name;
    // Same options twice: bit-identical with itself, not just with serial.
    const GreedyResult repeat = engine(pool, 8, options);
    EXPECT_EQ(repeat.seeds, parallel.seeds)
        << name << " not reproducible at " << threads << " threads";
  }
}

TEST_F(ParallelGreedyTest, GreedyCHatMatchesSerialAcrossThreadCounts) {
  for (const std::uint32_t h : {1U, 2U}) {
    for (const std::uint64_t seed : {11ULL, 22ULL}) {
      const RicPool pool = make_pool(h, seed, graph_, communities_);
      expect_parallel_matches_serial(pool, &greedy_c_hat, "greedy_c_hat");
    }
  }
}

TEST_F(ParallelGreedyTest, PlainGreedyNuMatchesSerialAcrossThreadCounts) {
  for (const std::uint32_t h : {1U, 2U}) {
    const RicPool pool = make_pool(h, 33, graph_, communities_);
    expect_parallel_matches_serial(pool, &plain_greedy_nu, "plain_greedy_nu");
  }
}

TEST_F(ParallelGreedyTest, CelfGreedyNuMatchesSerialAcrossThreadCounts) {
  for (const std::uint32_t h : {1U, 2U}) {
    const RicPool pool = make_pool(h, 44, graph_, communities_);
    expect_parallel_matches_serial(pool, &celf_greedy_nu, "celf_greedy_nu");
  }
}

TEST_F(ParallelGreedyTest, CelfParallelStillMatchesPlainGreedy) {
  // The burst refresh must not change which node CELF certifies as argmax.
  const RicPool pool = make_pool(2, 55, graph_, communities_);
  ThreadPool workers(4);
  GreedyOptions options;
  options.parallel = true;
  options.pool = &workers;
  options.min_parallel_candidates = 1;
  const GreedyResult celf = celf_greedy_nu(pool, 8, options);
  const GreedyResult plain = plain_greedy_nu(pool, 8, options);
  EXPECT_EQ(celf.seeds, plain.seeds);
}

TEST_F(ParallelGreedyTest, DefaultPoolPathWorks) {
  // options.pool == nullptr routes through default_pool().
  const RicPool pool = make_pool(1, 66, graph_, communities_);
  GreedyOptions options;
  options.parallel = true;
  options.min_parallel_candidates = 1;
  const GreedyResult parallel = greedy_c_hat(pool, 5, options);
  const GreedyResult serial = greedy_c_hat(pool, 5);
  EXPECT_EQ(parallel.seeds, serial.seeds);
}

}  // namespace
}  // namespace imc
