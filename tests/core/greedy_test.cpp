#include "core/greedy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "community/threshold_policy.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(GreedyChat, ReturnsKDistinctSeeds) {
  const test::NonSubmodularGadget gadget;
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(300, 1);
  const GreedyResult result = greedy_c_hat(pool, 2);
  EXPECT_EQ(result.seeds.size(), 2U);
  const std::set<NodeId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), 2U);
}

TEST(GreedyChat, FindsThePairOnGadget) {
  // Only {a=0, b=1} together can influence the h=2 community reliably; the
  // ν tie-break must steer the first pick toward a or b, the second
  // completes the pair.
  const test::NonSubmodularGadget gadget(0.5);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(2000, 2);
  const GreedyResult result = greedy_c_hat(pool, 2);
  std::set<NodeId> chosen(result.seeds.begin(), result.seeds.end());
  // {0,1}, {0,2}... any pair covering both members works; the crucial
  // property is a strictly positive ĉ.
  EXPECT_GT(result.c_hat, 0.0);
}

TEST(GreedyChat, RejectsBadK) {
  const test::NonSubmodularGadget gadget;
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(10, 3);
  EXPECT_THROW((void)greedy_c_hat(pool, 0), std::invalid_argument);
  EXPECT_THROW((void)greedy_c_hat(pool, 100), std::invalid_argument);
}

TEST(GreedyNu, CelfMatchesPlainGreedyValue) {
  for (const std::uint32_t h : {1U, 2U}) {
    for (const std::uint64_t seed : {10ULL, 20ULL, 30ULL}) {
      Rng rng(55);
      BarabasiAlbertConfig config;
      config.nodes = 60;
      config.attach = 3;
      EdgeList edges = barabasi_albert_edges(config, rng);
      apply_weighted_cascade(edges, config.nodes);
      const Graph g(config.nodes, edges);
      CommunitySet communities = test::chunk_communities(60, 5);
      apply_constant_thresholds(communities, h);
      apply_population_benefits(communities);
      RicPool pool(g, communities);
      pool.grow(800, seed);

      const GreedyResult celf = celf_greedy_nu(pool, 6);
      const GreedyResult plain = plain_greedy_nu(pool, 6);
      EXPECT_NEAR(celf.nu, plain.nu, 1e-9)
          << "h=" << h << " seed=" << seed;
    }
  }
}

TEST(GreedyNu, MonotoneInK) {
  const test::NonSubmodularGadget gadget(0.4);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(1000, 4);
  double previous = 0.0;
  for (std::uint32_t k = 1; k <= 4; ++k) {
    const GreedyResult result = celf_greedy_nu(pool, k);
    EXPECT_GE(result.nu + 1e-12, previous);
    previous = result.nu;
  }
}

TEST(GreedyNu, OptimalOnSubmodularCoverage) {
  // h = 1 communities: ν-greedy is plain max coverage; on a star graph the
  // center covers everything, so k = 1 must pick it.
  const Graph graph = test::star_graph(10, 1.0);
  CommunitySet communities = test::chunk_communities(10, 2);
  RicPool pool(graph, communities);
  pool.grow(400, 5);
  const GreedyResult result = celf_greedy_nu(pool, 1);
  ASSERT_EQ(result.seeds.size(), 1U);
  EXPECT_EQ(result.seeds[0], 0U);  // the hub touches every sample
  EXPECT_DOUBLE_EQ(result.c_hat, communities.total_benefit());
}

TEST(GreedyNu, FillsUpWhenFewCandidates) {
  // Edgeless graph: only members touch their own community's samples.
  GraphBuilder builder;
  builder.reserve_nodes(6);
  const Graph graph = builder.build();
  CommunitySet communities(6, {{0}});  // node 0 is the only candidate
  RicPool pool(graph, communities);
  pool.grow(50, 6);
  const GreedyResult result = celf_greedy_nu(pool, 3);
  EXPECT_EQ(result.seeds.size(), 3U);
  EXPECT_EQ(result.seeds[0], 0U);
}

TEST(GreedyChat, GreedyValuesAreConsistent) {
  const test::NonSubmodularGadget gadget(0.4);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(500, 7);
  const GreedyResult result = greedy_c_hat(pool, 2);
  EXPECT_NEAR(result.c_hat, pool.c_hat(result.seeds), 1e-12);
  EXPECT_NEAR(result.nu, pool.nu(result.seeds), 1e-12);
}

}  // namespace
}  // namespace imc
