// Degenerate budgets through every MAXR solver: k = 0 must throw (an empty
// budget is a caller bug, not an empty solution), and k larger than the
// set of positive-gain candidates must fill deterministically with the
// documented tie-break (untouched nodes ascending) instead of stalling or
// returning short seed sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/bt.h"
#include "core/greedy.h"
#include "core/maf.h"
#include "core/mb.h"
#include "core/ubg.h"
#include "test_support.h"

namespace imc {
namespace {

/// A sparse instance where most nodes never touch a sample: a weak path
/// graph with a handful of samples leaves plenty of untouched nodes, so
/// k = node_count exceeds the positive-gain candidate set.
struct SparseFixture {
  Graph graph;
  CommunitySet communities;
  RicPool pool;

  SparseFixture()
      : graph(test::path_graph(10, 0.05)),
        communities(test::chunk_communities(10, 2)),
        pool(graph, communities) {
    pool.grow(4, 11);
  }
};

TEST(DegenerateK, ZeroBudgetThrowsThroughEverySolver) {
  const SparseFixture fixture;
  EXPECT_THROW(plain_greedy_nu(fixture.pool, 0), std::invalid_argument);
  EXPECT_THROW(celf_greedy_nu(fixture.pool, 0), std::invalid_argument);
  EXPECT_THROW(greedy_c_hat(fixture.pool, 0), std::invalid_argument);
  EXPECT_THROW(ubg_solve(fixture.pool, 0), std::invalid_argument);
  EXPECT_THROW(maf_solve(fixture.pool, 0), std::invalid_argument);
  EXPECT_THROW(bt_solve(fixture.pool, 0), std::invalid_argument);
  EXPECT_THROW(mb_solve(fixture.pool, 0), std::invalid_argument);
}

TEST(DegenerateK, GreedyFillsPastPositiveGainCandidatesDeterministically) {
  const SparseFixture fixture;
  const std::uint32_t n = fixture.graph.node_count();

  std::vector<NodeId> touched;
  for (NodeId v = 0; v < n; ++v) {
    if (fixture.pool.appearance_count(v) > 0) touched.push_back(v);
  }
  ASSERT_LT(touched.size(), n) << "fixture must leave untouched nodes";

  const GreedyResult plain = plain_greedy_nu(fixture.pool, n);
  const GreedyResult celf = celf_greedy_nu(fixture.pool, n);
  const GreedyResult c_hat = greedy_c_hat(fixture.pool, n);

  // Full budget: every node selected exactly once, all three selectors.
  for (const GreedyResult* result : {&plain, &celf, &c_hat}) {
    ASSERT_EQ(result->seeds.size(), n);
    std::set<NodeId> unique(result->seeds.begin(), result->seeds.end());
    EXPECT_EQ(unique.size(), n);
  }
  // ν selectors agree seed-for-seed even in the exhausted tail.
  EXPECT_EQ(plain.seeds, celf.seeds);

  // The fill tail is the untouched nodes in ascending id order — the
  // documented fill_to_k tie-break. Touching candidates all precede it.
  const std::size_t candidate_count = touched.size();
  std::vector<NodeId> head(plain.seeds.begin(),
                           plain.seeds.begin() + candidate_count);
  std::sort(head.begin(), head.end());
  EXPECT_EQ(head, touched);
  std::vector<NodeId> tail(plain.seeds.begin() + candidate_count,
                           plain.seeds.end());
  EXPECT_TRUE(std::is_sorted(tail.begin(), tail.end()));
}

TEST(DegenerateK, SolversReturnFullBudgetSeedSets) {
  const SparseFixture fixture;
  const std::uint32_t n = fixture.graph.node_count();

  const UbgSolution ubg = ubg_solve(fixture.pool, n);
  EXPECT_EQ(ubg.seeds.size(), n);

  // MAF never pads: S1 stops when no community fits the budget and S2 only
  // holds touching nodes, so seeds can be SHORTER than k — but must stay
  // duplicate-free and within budget.
  const MafSolution maf = maf_solve(fixture.pool, n);
  EXPECT_LE(maf.seeds.size(), n);
  std::set<NodeId> maf_unique(maf.seeds.begin(), maf.seeds.end());
  EXPECT_EQ(maf_unique.size(), maf.seeds.size());

  const BtSolution bt = bt_solve(fixture.pool, n);
  EXPECT_LE(bt.seeds.size(), n);

  const MbSolution mb = mb_solve(fixture.pool, n);
  EXPECT_EQ(mb.c_hat, std::max(mb.maf.c_hat, mb.bt.c_hat));
}

TEST(DegenerateK, RepeatedRunsAreBitIdentical) {
  // The degenerate regimes must stay deterministic: same pool, same k,
  // same seeds — this is what lets the fuzz harness compare selector
  // variants seed-for-seed.
  const SparseFixture fixture;
  const std::uint32_t n = fixture.graph.node_count();
  const GreedyResult first = plain_greedy_nu(fixture.pool, n);
  const GreedyResult second = plain_greedy_nu(fixture.pool, n);
  EXPECT_EQ(first.seeds, second.seeds);
  const MbSolution mb_first = mb_solve(fixture.pool, n);
  const MbSolution mb_second = mb_solve(fixture.pool, n);
  EXPECT_EQ(mb_first.seeds, mb_second.seeds);
  EXPECT_EQ(mb_first.c_hat, mb_second.c_hat);
}

}  // namespace
}  // namespace imc
