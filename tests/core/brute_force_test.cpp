#include "core/brute_force.h"

#include <gtest/gtest.h>

#include "community/threshold_policy.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(BruteForce, SolvesGadgetExactly) {
  const test::NonSubmodularGadget gadget(0.5);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(500, 1);
  const BruteForceResult best = brute_force_maxr(pool, 2);
  EXPECT_EQ(best.seeds.size(), 2U);
  EXPECT_GT(best.influenced, 0U);
  // No pair can beat seeding both community members directly (they make
  // every sample influenced).
  const std::vector<NodeId> members{2, 3};
  EXPECT_EQ(best.influenced, pool.influenced_count(members));
}

TEST(BruteForce, KCoversAllCandidates) {
  const test::NonSubmodularGadget gadget(0.5);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(100, 2);
  const BruteForceResult best = brute_force_maxr(pool, 50);
  EXPECT_EQ(best.influenced, pool.size());  // all candidates seeded
}

TEST(BruteForce, RejectsHugeInstances) {
  Rng rng(3);
  const Graph graph = test::complete_graph(40, 0.3);
  const CommunitySet communities = test::chunk_communities(40, 4);
  RicPool pool(graph, communities);
  pool.grow(50, 3);
  EXPECT_THROW((void)brute_force_maxr(pool, 15, /*max_subsets=*/1000),
               std::invalid_argument);
}

TEST(BruteForce, RejectsZeroK) {
  const test::NonSubmodularGadget gadget;
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(10, 4);
  EXPECT_THROW((void)brute_force_maxr(pool, 0), std::invalid_argument);
}

TEST(BruteForce, BeatsOrMatchesEveryFixedPair) {
  const test::NonSubmodularGadget gadget(0.3);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(300, 5);
  const BruteForceResult best = brute_force_maxr(pool, 2);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) {
      const std::vector<NodeId> pair{a, b};
      EXPECT_GE(best.influenced, pool.influenced_count(pair));
    }
  }
}

}  // namespace
}  // namespace imc
