// ImcEngine regression and behavior tests.
//
// The golden pins below were recorded from the PRE-engine imcaf_solve
// (the monolithic driver, cold solve every stage) on a fixed BA-150
// scenario. The engine — with warm_start ON, its default — must reproduce
// them exactly: seed order, final |R|, stop-stage count, and ĉ down to the
// last bit (hexfloat literals). Any engine, warm-start, or pool-epoch
// change that perturbs a draw sequence or a floating-point accumulation
// shows up here as a changed pin.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "community/threshold_policy.h"
#include "core/engine.h"
#include "core/imcaf.h"
#include "core/maf.h"
#include "core/maxr_solver.h"
#include "core/ubg.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_pool.h"
#include "test_support.h"
#include "util/context.h"
#include "util/thread_pool.h"

namespace imc {
namespace {

class ImcEngineTest : public ::testing::Test {
 protected:
  static Graph make_graph() {
    Rng rng(77);
    BarabasiAlbertConfig config;
    config.nodes = 150;
    config.attach = 3;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_weighted_cascade(edges, config.nodes);
    return Graph(config.nodes, edges);
  }

  static CommunitySet make_communities(std::uint32_t h) {
    CommunitySet communities = test::chunk_communities(150, 6);
    apply_constant_thresholds(communities, h);
    apply_population_benefits(communities);
    return communities;
  }

  /// The exact configuration the pins were captured under.
  static ImcafConfig pinned_config() {
    ImcafConfig config;
    config.max_samples = 6000;
    config.seed = 2024;
    config.parallel_sampling = false;
    return config;
  }

  Graph graph_ = make_graph();
};

struct GoldenPin {
  std::uint32_t h;
  MaxrAlgorithm algorithm;
  std::vector<NodeId> seeds;
  double c_hat;  // exact hexfloat value on the final pool
};

// Recorded from the pre-engine driver; see the header comment.
const std::vector<GoldenPin>& golden_pins() {
  static const std::vector<GoldenPin> pins = {
      {1, MaxrAlgorithm::kUbg, {1, 3, 0, 6, 8, 40, 97, 10},
       0x1.2373333333333p+7},
      {1, MaxrAlgorithm::kMaf, {1, 3, 0, 8, 10, 6, 2, 4}, 0x1.22cp+7},
      {1, MaxrAlgorithm::kBt, {1, 3, 0, 10, 4, 2, 8, 6}, 0x1.22cp+7},
      {1, MaxrAlgorithm::kMb, {1, 3, 0, 8, 10, 6, 2, 4}, 0x1.22cp+7},
      {2, MaxrAlgorithm::kUbg, {1, 3, 0, 8, 6, 10, 20, 40}, 0x1.fap+6},
      {2, MaxrAlgorithm::kMaf, {1, 3, 0, 8, 10, 6, 2, 4},
       0x1.f59999999999ap+6},
      {2, MaxrAlgorithm::kBt, {1, 3, 0, 10, 8, 2, 20, 14},
       0x1.f81999999999ap+6},
      {2, MaxrAlgorithm::kMb, {1, 3, 0, 10, 8, 2, 20, 14},
       0x1.f81999999999ap+6},
  };
  return pins;
}

TEST_F(ImcEngineTest, GoldenPinsMatchPreEngineDriver) {
  for (const GoldenPin& pin : golden_pins()) {
    const CommunitySet communities = make_communities(pin.h);
    const auto solver = make_maxr_solver(pin.algorithm);
    const ImcafResult result =
        imcaf_solve(graph_, communities, 8, *solver, pinned_config());
    const std::string where =
        "h=" + std::to_string(pin.h) + " " + to_string(pin.algorithm);
    EXPECT_EQ(result.seeds, pin.seeds) << where;
    EXPECT_EQ(result.samples_used, 6000U) << where;
    EXPECT_EQ(result.stop_stages, 3U) << where;
    EXPECT_EQ(result.c_hat, pin.c_hat) << where;
  }
}

TEST_F(ImcEngineTest, WarmStartFlagDoesNotChangeResults) {
  // The resume() contract end to end: turning warm_start off must not move
  // a single bit of the outcome, only the time spent inside the solver.
  for (const std::uint32_t h : {1U, 2U}) {
    const CommunitySet communities = make_communities(h);
    const UbgSolver solver;
    ImcafConfig cold_config = pinned_config();
    cold_config.warm_start = false;
    const ImcafResult warm =
        imcaf_solve(graph_, communities, 8, solver, pinned_config());
    const ImcafResult cold =
        imcaf_solve(graph_, communities, 8, solver, cold_config);
    EXPECT_EQ(warm.seeds, cold.seeds) << "h=" << h;
    EXPECT_EQ(warm.c_hat, cold.c_hat) << "h=" << h;
    EXPECT_EQ(warm.estimated_benefit, cold.estimated_benefit) << "h=" << h;
    EXPECT_EQ(warm.samples_used, cold.samples_used) << "h=" << h;
    EXPECT_EQ(warm.stop_stages, cold.stop_stages) << "h=" << h;
  }
}

TEST_F(ImcEngineTest, WarmUbgMatchesColdAcrossDoublingAndThreads) {
  // Solver-level equivalence at every doubling stage: resume must match a
  // cold solve on the same grown pool bit-for-bit — seed set, ĉ, and the
  // ν value of the CELF side — at 1, 2 and 8 workers.
  for (const std::uint32_t h : {1U, 2U}) {
    const CommunitySet communities = make_communities(h);
    for (const unsigned threads : {1U, 2U, 8U}) {
      ThreadPool workers(threads);
      GreedyOptions options;
      options.parallel = true;
      options.pool = &workers;
      options.min_parallel_candidates = 1;  // force the parallel path
      RicPool pool(graph_, communities);
      UbgResume state;
      for (const std::uint64_t target : {1500U, 3000U, 6000U}) {
        pool.grow(target - pool.size(), 2024, /*parallel=*/false);
        const UbgSolution warm = ubg_resume(pool, 8, options, state);
        const UbgSolution cold = ubg_solve(pool, 8, options);
        const std::string where = "h=" + std::to_string(h) +
                                  " threads=" + std::to_string(threads) +
                                  " |R|=" + std::to_string(target);
        EXPECT_EQ(warm.seeds, cold.seeds) << where;
        EXPECT_EQ(warm.c_hat, cold.c_hat) << where;
        EXPECT_EQ(warm.from_c_hat.seeds, cold.from_c_hat.seeds) << where;
        EXPECT_EQ(warm.from_c_hat.c_hat, cold.from_c_hat.c_hat) << where;
        EXPECT_EQ(warm.from_nu.seeds, cold.from_nu.seeds) << where;
        EXPECT_EQ(warm.from_nu.nu, cold.from_nu.nu) << where;
        EXPECT_EQ(warm.sandwich_ratio, cold.sandwich_ratio) << where;
      }
    }
  }
}

TEST_F(ImcEngineTest, WarmMafMatchesColdAcrossDoublingAndThreads) {
  for (const std::uint32_t h : {1U, 2U}) {
    const CommunitySet communities = make_communities(h);
    for (const unsigned threads : {1U, 2U, 8U}) {
      ThreadPool workers(threads);
      GreedyOptions options;
      options.parallel = true;
      options.pool = &workers;
      options.min_parallel_candidates = 1;
      RicPool pool(graph_, communities);
      MafResume state;
      for (const std::uint64_t target : {1500U, 3000U, 6000U}) {
        pool.grow(target - pool.size(), 2024, /*parallel=*/false);
        const MafSolution warm = maf_resume(pool, 8, /*seed=*/99, options,
                                            state);
        const MafSolution cold = maf_solve(pool, 8, /*seed=*/99, options);
        const std::string where = "h=" + std::to_string(h) +
                                  " threads=" + std::to_string(threads) +
                                  " |R|=" + std::to_string(target);
        EXPECT_EQ(warm.seeds, cold.seeds) << where;
        EXPECT_EQ(warm.c_hat, cold.c_hat) << where;
        EXPECT_EQ(warm.s1, cold.s1) << where;
        EXPECT_EQ(warm.s2, cold.s2) << where;
        EXPECT_EQ(warm.chose_s1, cold.chose_s1) << where;
      }
    }
  }
}

TEST_F(ImcEngineTest, SolveManySharesOnePoolAcrossQueries) {
  const CommunitySet communities = make_communities(1);
  const UbgSolver ubg;
  const MafSolver maf;
  ImcEngine engine(graph_, communities, pinned_config());
  const std::vector<EngineQuery> queries{{8, &ubg}, {8, &maf}, {4, &ubg}};
  const std::vector<ImcafResult> results = engine.solve_many(queries);
  ASSERT_EQ(results.size(), 3U);

  // The first query is exactly the single-shot run — golden pin holds.
  EXPECT_EQ(results[0].seeds, (std::vector<NodeId>{1, 3, 0, 6, 8, 40, 97,
                                                   10}));
  EXPECT_EQ(results[0].samples_used, 6000U);

  // The pool only ever grows; later queries start from the grown size.
  for (std::size_t i = 0; i + 1 < results.size(); ++i) {
    EXPECT_LE(results[i].samples_used, results[i + 1].samples_used);
  }
  EXPECT_EQ(engine.pool().size(), results.back().samples_used);
  for (const ImcafResult& result : results) {
    EXPECT_FALSE(result.seeds.empty());
  }
}

TEST_F(ImcEngineTest, SolveManyRejectsNullSolver) {
  const CommunitySet communities = make_communities(1);
  ImcEngine engine(graph_, communities, pinned_config());
  const std::vector<EngineQuery> queries{{8, nullptr}};
  EXPECT_THROW((void)engine.solve_many(queries), std::invalid_argument);
}

TEST_F(ImcEngineTest, ValidatesArguments) {
  const CommunitySet empty(150, {});
  EXPECT_THROW(ImcEngine(graph_, empty, pinned_config()),
               std::invalid_argument);
  const CommunitySet communities = make_communities(1);
  ImcEngine engine(graph_, communities, pinned_config());
  const UbgSolver solver;
  EXPECT_THROW((void)engine.solve(0, solver), std::invalid_argument);
  EXPECT_THROW((void)engine.solve(151, solver), std::invalid_argument);
}

TEST_F(ImcEngineTest, ExpiredDeadlineReturnsPartialResultAfterOneStage) {
  const CommunitySet communities = make_communities(1);
  const UbgSolver solver;
  ExecutionContext context;
  context.deadline = Deadline(1e-9);  // effectively already expired
  ImcEngine engine(graph_, communities, pinned_config(), context);
  const ImcafResult result = engine.solve(8, solver);
  EXPECT_TRUE(result.reached_deadline);
  EXPECT_FALSE(result.reached_cap);
  EXPECT_EQ(result.stop_stages, 1U);
  // Stopping is only checked after a solve, so a real candidate survives.
  EXPECT_EQ(result.seeds.size(), 8U);
}

TEST_F(ImcEngineTest, CancellationFlagStopsAfterCurrentStage) {
  const CommunitySet communities = make_communities(1);
  const UbgSolver solver;
  const std::atomic<bool> cancel{true};
  ExecutionContext context;
  context.cancel = &cancel;
  ImcEngine engine(graph_, communities, pinned_config(), context);
  const ImcafResult result = engine.solve(8, solver);
  EXPECT_TRUE(result.reached_deadline);
  EXPECT_EQ(result.stop_stages, 1U);
  EXPECT_EQ(result.seeds.size(), 8U);
}

TEST_F(ImcEngineTest, MetricsSinkRecordsOneRowPerStopStage) {
  const CommunitySet communities = make_communities(1);
  const UbgSolver solver;
  RecordingMetricsSink metrics;
  ExecutionContext context;
  context.metrics = &metrics;
  ImcEngine engine(graph_, communities, pinned_config(), context);
  const ImcafResult result = engine.solve(8, solver);

  const std::vector<StageMetrics> rows = metrics.stages();
  ASSERT_EQ(rows.size(), result.stop_stages);
  ASSERT_EQ(rows.size(), 3U);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].stage, i + 1);
    // warm_start defaults on: cold first stage, resumed afterwards.
    EXPECT_EQ(rows[i].warm_start, i > 0);
    EXPECT_GE(rows[i].solver_seconds, 0.0);
    if (i > 0) {
      EXPECT_GT(rows[i].pool_size, rows[i - 1].pool_size);
      EXPECT_EQ(rows[i].samples_added,
                rows[i].pool_size - rows[i - 1].pool_size);
      EXPECT_FALSE(rows[i - 1].accepted);  // only the last row can accept
    } else {
      EXPECT_EQ(rows[i].samples_added, rows[i].pool_size);
    }
  }
  EXPECT_EQ(rows.back().pool_size, result.samples_used);
  // The run ends by acceptance or by the cap — exactly one of the two.
  EXPECT_NE(rows.back().accepted, result.reached_cap);

  std::ostringstream out;
  metrics.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  std::size_t row_count = 0;
  for (std::size_t at = json.find("\"pool_size\""); at != std::string::npos;
       at = json.find("\"pool_size\"", at + 1)) {
    ++row_count;
  }
  EXPECT_EQ(row_count, rows.size());
}

}  // namespace
}  // namespace imc
