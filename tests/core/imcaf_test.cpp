#include "core/imcaf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "community/threshold_policy.h"
#include "core/maf.h"
#include "core/maxr_solver.h"
#include "core/ubg.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

struct Instance {
  Graph graph;
  CommunitySet communities;
};

Instance bounded_instance(NodeId nodes = 64) {
  Rng rng(7);
  BarabasiAlbertConfig config;
  config.nodes = nodes;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, nodes);
  Instance instance;
  instance.graph = Graph(nodes, edges);
  instance.communities = test::chunk_communities(nodes, 4);
  apply_population_benefits(instance.communities);
  apply_constant_thresholds(instance.communities, 2);
  return instance;
}

TEST(Imcaf, RunsWithEverySolver) {
  const Instance instance = bounded_instance();
  for (const MaxrAlgorithm algorithm :
       {MaxrAlgorithm::kUbg, MaxrAlgorithm::kMaf, MaxrAlgorithm::kBt,
        MaxrAlgorithm::kMb}) {
    const auto solver = make_maxr_solver(algorithm);
    ImcafConfig config;
    config.max_samples = 4000;
    const ImcafResult result =
        imcaf_solve(instance.graph, instance.communities, 4, *solver, config);
    EXPECT_FALSE(result.seeds.empty()) << to_string(algorithm);
    EXPECT_LE(result.seeds.size(), 4U);
    const std::set<NodeId> unique(result.seeds.begin(), result.seeds.end());
    EXPECT_EQ(unique.size(), result.seeds.size());
    EXPECT_GT(result.samples_used, 0U);
    EXPECT_GE(result.stop_stages, 1U);
    EXPECT_GT(result.lambda, 0.0);
  }
}

TEST(Imcaf, ValidatesArguments) {
  const Instance instance = bounded_instance();
  UbgSolver solver;
  EXPECT_THROW((void)imcaf_solve(instance.graph, CommunitySet{}, 3, solver),
               std::invalid_argument);
  EXPECT_THROW((void)imcaf_solve(instance.graph, instance.communities, 0, solver),
               std::invalid_argument);
  EXPECT_THROW((void)
      imcaf_solve(instance.graph, instance.communities, 100000, solver),
      std::invalid_argument);
}

TEST(Imcaf, EstimatedBenefitTracksMonteCarlo) {
  const Instance instance = bounded_instance();
  UbgSolver solver;
  ImcafConfig config;
  config.max_samples = 20000;
  const ImcafResult result =
      imcaf_solve(instance.graph, instance.communities, 5, solver, config);

  MonteCarloOptions mc;
  mc.simulations = 40000;
  const double truth = mc_expected_benefit(instance.graph,
                                           instance.communities,
                                           result.seeds, mc);
  EXPECT_NEAR(result.estimated_benefit, truth,
              std::max(1.0, truth * 0.15));
}

TEST(Imcaf, RespectsSampleCap) {
  const Instance instance = bounded_instance();
  MafSolver solver;
  ImcafConfig config;
  config.max_samples = 500;
  const ImcafResult result =
      imcaf_solve(instance.graph, instance.communities, 4, solver, config);
  EXPECT_LE(result.samples_used, 500U);
}

TEST(Imcaf, DeterministicGivenSeed) {
  const Instance instance = bounded_instance();
  MafSolver solver;
  ImcafConfig config;
  config.max_samples = 2000;
  config.seed = 77;
  const ImcafResult a =
      imcaf_solve(instance.graph, instance.communities, 4, solver, config);
  const ImcafResult b =
      imcaf_solve(instance.graph, instance.communities, 4, solver, config);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.samples_used, b.samples_used);
}

TEST(Imcaf, QualityBeatsRandomSeeds) {
  const Instance instance = bounded_instance(96);
  UbgSolver solver;
  ImcafConfig config;
  config.max_samples = 8000;
  const ImcafResult result =
      imcaf_solve(instance.graph, instance.communities, 6, solver, config);

  MonteCarloOptions mc;
  mc.simulations = 20000;
  Rng rng(5);
  double random_best = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto seeds =
        rng.sample_without_replacement(instance.graph.node_count(), 6);
    random_best = std::max(
        random_best, mc_expected_benefit(instance.graph,
                                         instance.communities, seeds, mc));
  }
  const double ours = mc_expected_benefit(instance.graph,
                                          instance.communities,
                                          result.seeds, mc);
  EXPECT_GE(ours, random_best * 0.95);
}

TEST(Imcaf, ReportsRuntime) {
  const Instance instance = bounded_instance();
  MafSolver solver;
  ImcafConfig config;
  config.max_samples = 1000;
  const ImcafResult result =
      imcaf_solve(instance.graph, instance.communities, 3, solver, config);
  EXPECT_GE(result.runtime_seconds, 0.0);
  EXPECT_LT(result.runtime_seconds, 120.0);
  // Sampling instrumentation: every sample the run used was generated
  // inside a timed grow() stage, and the grow time is part of the total.
  EXPECT_EQ(result.samples_generated, result.samples_used);
  EXPECT_GE(result.sampling_seconds, 0.0);
  EXPECT_LE(result.sampling_seconds, result.runtime_seconds);
}

}  // namespace
}  // namespace imc
