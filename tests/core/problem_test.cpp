#include "core/problem.h"

#include <gtest/gtest.h>

#include "graph/generators/dataset_catalog.h"
#include "test_support.h"

namespace imc {
namespace {

class ProblemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(make_dataset(DatasetId::kFacebook, 0.15));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  static Graph* graph_;
};

Graph* ProblemTest::graph_ = nullptr;

TEST_F(ProblemTest, LouvainRegularDefaults) {
  CommunityBuildConfig config;  // Louvain, s = 8, regular 0.5
  const CommunitySet communities = build_communities(*graph_, config);
  EXPECT_GT(communities.size(), 1U);
  for (CommunityId c = 0; c < communities.size(); ++c) {
    EXPECT_LE(communities.population(c), 8U);
    EXPECT_DOUBLE_EQ(communities.benefit(c),
                     static_cast<double>(communities.population(c)));
    // h = ceil(0.5 * population)
    EXPECT_EQ(communities.threshold(c),
              (communities.population(c) + 1) / 2);
  }
}

TEST_F(ProblemTest, BoundedRegimeSetsConstantThresholds) {
  CommunityBuildConfig config;
  config.regime = ThresholdRegime::kConstantBounded;
  config.threshold_constant = 2;
  const CommunitySet communities = build_communities(*graph_, config);
  EXPECT_LE(communities.max_threshold(), 2U);
}

TEST_F(ProblemTest, RandomMethodHonorsCommunityCount) {
  CommunityBuildConfig config;
  config.method = CommunityMethod::kRandom;
  config.random_communities = 12;
  config.size_cap = 0;  // no splitting
  const CommunitySet communities = build_communities(*graph_, config);
  EXPECT_EQ(communities.size(), 12U);
  EXPECT_NEAR(communities.coverage(), 1.0, 1e-12);
}

TEST_F(ProblemTest, RandomMethodDefaultsToNOverS) {
  CommunityBuildConfig config;
  config.method = CommunityMethod::kRandom;
  config.size_cap = 8;
  const CommunitySet communities = build_communities(*graph_, config);
  // n/s communities before capping; capping may add a few.
  EXPECT_GE(communities.size(), graph_->node_count() / 8);
}

TEST_F(ProblemTest, LabelPropagationMethodWorks) {
  CommunityBuildConfig config;
  config.method = CommunityMethod::kLabelPropagation;
  const CommunitySet communities = build_communities(*graph_, config);
  EXPECT_GT(communities.size(), 0U);
  EXPECT_NEAR(communities.coverage(), 1.0, 1e-12);
}

TEST_F(ProblemTest, DeterministicGivenSeed) {
  CommunityBuildConfig config;
  config.seed = 77;
  const CommunitySet a = build_communities(*graph_, config);
  const CommunitySet b = build_communities(*graph_, config);
  ASSERT_EQ(a.size(), b.size());
  for (CommunityId c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a.population(c), b.population(c));
    const auto ma = a.members(c);
    const auto mb = b.members(c);
    for (std::size_t i = 0; i < ma.size(); ++i) EXPECT_EQ(ma[i], mb[i]);
  }
}

TEST_F(ProblemTest, ImcProblemValidity) {
  ImcProblem problem;
  EXPECT_FALSE(problem.valid());
  problem.graph = graph_;
  EXPECT_FALSE(problem.valid());  // still no communities
  problem.communities = build_communities(*graph_, {});
  problem.k = 10;
  EXPECT_TRUE(problem.valid());
  problem.k = 0;
  EXPECT_FALSE(problem.valid());
}

TEST(ProblemStrings, EnumNames) {
  EXPECT_EQ(to_string(CommunityMethod::kLouvain), "louvain");
  EXPECT_EQ(to_string(CommunityMethod::kRandom), "random");
  EXPECT_EQ(to_string(CommunityMethod::kLabelPropagation), "lpa");
  EXPECT_EQ(to_string(ThresholdRegime::kFractionOfPopulation), "regular");
  EXPECT_EQ(to_string(ThresholdRegime::kConstantBounded), "bounded");
}

}  // namespace
}  // namespace imc
