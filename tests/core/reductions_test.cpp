// Machine-checks the Theorem 1 reduction: e(S_D) = c(S'_I) on concrete
// instances (both directions of the paper's proof), using exact forward
// evaluation — the constructed graph is deterministic (all weights 1), so
// c(S) needs a single IC realization.
#include "core/reductions.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "diffusion/monte_carlo.h"
#include "graph/algorithms.h"
#include "util/rng.h"

namespace imc {
namespace {

/// Exact c(S) on a deterministic (weight-1) instance: one simulation.
double exact_benefit(const DksToImcResult& reduction,
                     const std::vector<NodeId>& seeds) {
  MonteCarloOptions mc;
  mc.simulations = 1;  // all edges certain: one run is exact
  return mc_expected_benefit(reduction.graph, reduction.communities, seeds,
                             mc);
}

DksInstance triangle_plus_pendant() {
  // Nodes 0-1-2 triangle, pendant edge 2-3.
  DksInstance instance;
  instance.nodes = 4;
  instance.edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}};
  return instance;
}

TEST(DksReduction, ConstructionShape) {
  const DksInstance instance = triangle_plus_pendant();
  const DksToImcResult reduction = dks_to_imc(instance);
  // 2 copy-nodes per edge.
  EXPECT_EQ(reduction.graph.node_count(), 8U);
  EXPECT_EQ(reduction.communities.size(), 4U);
  for (CommunityId c = 0; c < 4; ++c) {
    EXPECT_EQ(reduction.communities.population(c), 2U);
    EXPECT_EQ(reduction.communities.threshold(c), 2U);
    EXPECT_DOUBLE_EQ(reduction.communities.benefit(c), 1.0);
  }
  // Node 2 has 3 incident edges -> 3 copies forming a strongly connected
  // cluster.
  EXPECT_EQ(reduction.copies_of[2].size(), 3U);
  const Components scc = strongly_connected_components(reduction.graph);
  const CommunityId cluster = scc.component_of[reduction.copies_of[2][0]];
  for (const NodeId copy : reduction.copies_of[2]) {
    EXPECT_EQ(scc.component_of[copy], cluster);
  }
}

TEST(DksReduction, LiftedSeedsRealizeInducedEdges) {
  // Forward direction of the proof: e(S_D) = c(lift(S_D)).
  const DksInstance instance = triangle_plus_pendant();
  const DksToImcResult reduction = dks_to_imc(instance);

  const std::vector<std::vector<NodeId>> choices = {
      {0, 1},        // 1 induced edge
      {0, 1, 2},     // 3 induced edges (the triangle)
      {2, 3},        // 1 induced edge
      {0, 3},        // 0 induced edges
      {0, 1, 2, 3},  // all 4 edges
  };
  for (const auto& chosen : choices) {
    const auto lifted = lift_seeds_to_imc(reduction, chosen);
    EXPECT_DOUBLE_EQ(exact_benefit(reduction, lifted),
                     static_cast<double>(dks_edges_inside(instance, chosen)))
        << "set size " << chosen.size();
  }
}

TEST(DksReduction, ProjectionNeverLosesBenefit) {
  // Backward direction: any IMC seed set's benefit is at most the induced
  // edge count of its projection (c(S_I) <= e(project(S_I))).
  const DksInstance instance = triangle_plus_pendant();
  const DksToImcResult reduction = dks_to_imc(instance);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto seeds = rng.sample_without_replacement(
        reduction.graph.node_count(),
        1 + static_cast<std::uint32_t>(rng.below(4)));
    const std::vector<NodeId> seed_vec(seeds.begin(), seeds.end());
    const double benefit = exact_benefit(reduction, seed_vec);
    const auto projected = project_seeds_to_dks(reduction, seed_vec);
    EXPECT_LE(benefit,
              static_cast<double>(dks_edges_inside(instance, projected)) +
                  1e-12);
  }
}

TEST(DksReduction, RandomInstancesEquality) {
  // Property sweep on random DkS instances: equality for lifted sets.
  for (std::uint64_t trial = 1; trial <= 10; ++trial) {
    Rng rng(trial * 101);
    DksInstance instance;
    instance.nodes = 6 + static_cast<NodeId>(rng.below(5));
    for (NodeId a = 0; a < instance.nodes; ++a) {
      for (NodeId b = a + 1; b < instance.nodes; ++b) {
        if (rng.bernoulli(0.4)) instance.edges.emplace_back(a, b);
      }
    }
    if (instance.edges.empty()) continue;
    const DksToImcResult reduction = dks_to_imc(instance);

    const auto chosen_raw = rng.sample_without_replacement(
        instance.nodes, std::min<std::uint32_t>(4, instance.nodes));
    std::vector<NodeId> chosen(chosen_raw.begin(), chosen_raw.end());
    // Keep only nodes that have copies (incident edges).
    chosen.erase(std::remove_if(chosen.begin(), chosen.end(),
                                [&](NodeId a) {
                                  return reduction.copies_of[a].empty();
                                }),
                 chosen.end());
    if (chosen.empty()) continue;
    const auto lifted = lift_seeds_to_imc(reduction, chosen);
    EXPECT_DOUBLE_EQ(exact_benefit(reduction, lifted),
                     static_cast<double>(dks_edges_inside(instance, chosen)))
        << "trial " << trial;
  }
}

TEST(DksReduction, RejectsBadInput) {
  DksInstance empty;
  empty.nodes = 3;
  EXPECT_THROW((void)dks_to_imc(empty), std::invalid_argument);

  DksInstance loop;
  loop.nodes = 2;
  loop.edges = {{1, 1}};
  EXPECT_THROW((void)dks_to_imc(loop), std::invalid_argument);

  DksInstance range;
  range.nodes = 2;
  range.edges = {{0, 5}};
  EXPECT_THROW((void)dks_to_imc(range), std::invalid_argument);
}

}  // namespace
}  // namespace imc
