#include "core/maf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "community/threshold_policy.h"
#include "core/brute_force.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

/// The paper's S_2 counterexample (proof of Theorem 3): 6 disjoint
/// 3-member communities with h = 2; hub u touches one member of C1..C3,
/// hub v touches one member of C4..C6; no other edges. All edges certain.
struct S2Counterexample {
  Graph graph;
  CommunitySet communities;
  NodeId u, v;

  S2Counterexample() {
    GraphBuilder builder;
    // Members: community i occupies nodes [3i, 3i+3), i in 0..5.
    // Hubs: u = 18, v = 19.
    u = 18;
    v = 19;
    builder.reserve_nodes(20);
    for (int i = 0; i < 3; ++i) builder.add_edge(u, 3 * i, 1.0);
    for (int i = 3; i < 6; ++i) builder.add_edge(v, 3 * i, 1.0);
    graph = builder.build();
    std::vector<std::vector<NodeId>> groups;
    for (NodeId c = 0; c < 6; ++c) {
      groups.push_back({static_cast<NodeId>(3 * c),
                        static_cast<NodeId>(3 * c + 1),
                        static_cast<NodeId>(3 * c + 2)});
    }
    communities = CommunitySet(20, std::move(groups));
    for (CommunityId c = 0; c < 6; ++c) communities.set_threshold(c, 2);
  }
};

TEST(Maf, S2AloneHasNoGuarantee) {
  const S2Counterexample instance;
  RicPool pool(instance.graph, instance.communities);
  pool.grow(1200, 1);
  const MafSolution solution = maf_solve(pool, 2);

  // u and v appear the most (3 communities each vs 1 for members)...
  ASSERT_EQ(solution.s2.size(), 2U);
  const std::set<NodeId> s2(solution.s2.begin(), solution.s2.end());
  EXPECT_TRUE(s2.contains(instance.u));
  EXPECT_TRUE(s2.contains(instance.v));
  // ...yet influence nothing (every community needs 2 members).
  EXPECT_DOUBLE_EQ(pool.c_hat(solution.s2), 0.0);

  // S_1 pays h = 2 seats in one community and scores there — MAF must
  // return S_1 here.
  EXPECT_TRUE(solution.chose_s1);
  EXPECT_GT(solution.c_hat, 0.0);
}

TEST(Maf, S1FillsSeatsByCommunityFrequency) {
  const S2Counterexample instance;
  RicPool pool(instance.graph, instance.communities);
  pool.grow(600, 2);
  const MafSolution solution = maf_solve(pool, 4);
  // k = 4 fits exactly two communities (h = 2 each); all four seeds must be
  // members (never hubs).
  ASSERT_EQ(solution.s1.size(), 4U);
  for (const NodeId seed : solution.s1) {
    EXPECT_NE(seed, instance.u);
    EXPECT_NE(seed, instance.v);
    EXPECT_NE(instance.communities.community_of(seed), kInvalidCommunity);
  }
}

TEST(Maf, Theorem3BoundHolds) {
  // ĉ(MAF) >= (1/r)·⌊k/h⌋·ĉ(OPT) on random small instances.
  for (const std::uint64_t trial : {1ULL, 2ULL, 3ULL, 4ULL}) {
    Rng rng(trial);
    BarabasiAlbertConfig config;
    config.nodes = 24;
    config.attach = 2;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_uniform_weights(edges, 0.4);
    const Graph graph(config.nodes, edges);
    CommunitySet communities = test::chunk_communities(24, 4);
    apply_constant_thresholds(communities, 2);
    RicPool pool(graph, communities);
    pool.grow(250, trial * 7);

    const std::uint32_t k = 4;
    const MafSolution maf = maf_solve(pool, k, trial);
    const BruteForceResult opt = brute_force_maxr(pool, k, 50'000'000);
    const double r = communities.size();
    const double h = communities.max_threshold();
    const double bound = std::floor(k / h) / r * opt.c_hat;
    EXPECT_GE(maf.c_hat + 1e-9, bound) << "trial " << trial;
  }
}

TEST(Maf, ReturnsAtMostKSeeds) {
  const S2Counterexample instance;
  RicPool pool(instance.graph, instance.communities);
  pool.grow(200, 3);
  for (const std::uint32_t k : {1U, 2U, 3U, 5U, 8U}) {
    const MafSolution solution = maf_solve(pool, k);
    EXPECT_LE(solution.seeds.size(), k);
    EXPECT_LE(solution.s1.size(), k);
    EXPECT_LE(solution.s2.size(), k);
  }
}

TEST(Maf, DeterministicGivenSeed) {
  const S2Counterexample instance;
  RicPool pool(instance.graph, instance.communities);
  pool.grow(200, 4);
  const MafSolution a = maf_solve(pool, 4, 99);
  const MafSolution b = maf_solve(pool, 4, 99);
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(Maf, AlphaFormula) {
  const S2Counterexample instance;
  RicPool pool(instance.graph, instance.communities);
  pool.grow(50, 5);
  MafSolver solver;
  // r = 6, h = 2, k = 4 -> α = ⌊4/2⌋/6 = 1/3.
  EXPECT_NEAR(solver.alpha(pool, 4), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(solver.name(), "MAF");
}

}  // namespace
}  // namespace imc
