// Bit-identity contract of the gain-kernel layer (core/gain_kernels.h,
// DESIGN.md §14): every kernel variant available on the host must produce
// BIT-IDENTICAL sweep gains, ν marginals, and greedy/CELF seed selections
// to the scalar reference — including slab-boundary pool sizes (0, 1, 63,
// 64, 65 — the saturation-word edges) and touch counts that are not a
// multiple of any vector width (SIMD tail handling). Also pins the
// dispatch API itself: parse/name round trips, unsupported kinds are
// rejected, and the sharded parallel selection is invariant under kernel
// x shard-count x thread-count.
#include "core/gain_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "community/threshold_policy.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace imc {
namespace {

/// Forces one kernel for a scope, restoring the previous one on exit so a
/// failing test cannot leak its variant into the rest of the binary.
class KernelGuard {
 public:
  explicit KernelGuard(GainKernelKind kind)
      : saved_(active_gain_kernel()) {
    EXPECT_TRUE(set_gain_kernel(kind));
  }
  ~KernelGuard() { set_gain_kernel(saved_); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;

 private:
  GainKernelKind saved_;
};

std::vector<GainKernelKind> supported_kernels() {
  std::vector<GainKernelKind> kinds;
  for (const GainKernelKind kind :
       {GainKernelKind::kScalar, GainKernelKind::kPopcnt,
        GainKernelKind::kAvx2, GainKernelKind::kAvx512}) {
    if (gain_kernel_supported(kind)) kinds.push_back(kind);
  }
  return kinds;
}

/// Exact-representation equality: the bit-identity claim is stronger than
/// double ==, so compare raw bytes.
template <typename T>
::testing::AssertionResult bits_equal(const std::vector<T>& a,
                                      const std::vector<T>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs "
                                         << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(T)) != 0) {
        return ::testing::AssertionFailure()
               << "first divergence at index " << i;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

Graph make_graph() {
  Rng rng(77);
  BarabasiAlbertConfig config;
  config.nodes = 150;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  return Graph(config.nodes, edges);
}

RicPool make_pool(const Graph& graph, std::uint64_t samples,
                  std::uint32_t h, std::uint64_t seed) {
  CommunitySet communities = test::chunk_communities(150, 6);
  apply_constant_thresholds(communities, h);
  apply_population_benefits(communities);
  RicPool pool(graph, communities);
  if (samples > 0) pool.grow(samples, seed, /*parallel=*/false);
  return pool;
}

class GainKernelTest : public ::testing::Test {
 protected:
  Graph graph_ = make_graph();
};

TEST_F(GainKernelTest, ParseAndNameRoundTrip) {
  for (const GainKernelKind kind :
       {GainKernelKind::kScalar, GainKernelKind::kPopcnt,
        GainKernelKind::kAvx2, GainKernelKind::kAvx512}) {
    const auto parsed = parse_gain_kernel(gain_kernel_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_gain_kernel("").has_value());
  EXPECT_FALSE(parse_gain_kernel("sse2").has_value());
  EXPECT_FALSE(parse_gain_kernel("AVX2").has_value());  // case-sensitive
}

TEST_F(GainKernelTest, ScalarAlwaysSupportedAndSelectable) {
  ASSERT_TRUE(gain_kernel_supported(GainKernelKind::kScalar));
  const KernelGuard guard(GainKernelKind::kScalar);
  EXPECT_EQ(active_gain_kernel(), GainKernelKind::kScalar);
  EXPECT_EQ(active_gain_kernel_ops().kind, GainKernelKind::kScalar);
  EXPECT_STREQ(active_gain_kernel_ops().name, "scalar");
}

TEST_F(GainKernelTest, UnsupportedKindIsRejected) {
  for (const GainKernelKind kind :
       {GainKernelKind::kPopcnt, GainKernelKind::kAvx2,
        GainKernelKind::kAvx512}) {
    if (gain_kernel_supported(kind)) {
      EXPECT_NO_THROW((void)gain_kernel_ops(kind));
      continue;
    }
    const GainKernelKind before = active_gain_kernel();
    EXPECT_FALSE(set_gain_kernel(kind));
    EXPECT_EQ(active_gain_kernel(), before);  // unchanged on failure
    EXPECT_THROW((void)gain_kernel_ops(kind), std::invalid_argument);
  }
}

TEST_F(GainKernelTest, OpsTableMatchesKind) {
  for (const GainKernelKind kind : supported_kernels()) {
    const GainKernelOps& ops = gain_kernel_ops(kind);
    EXPECT_EQ(ops.kind, kind);
    EXPECT_STREQ(ops.name, gain_kernel_name(kind));
    EXPECT_NE(ops.accumulate_influenced, nullptr);
    EXPECT_NE(ops.accumulate_nu, nullptr);
    EXPECT_NE(ops.marginal_nu, nullptr);
  }
}

// Every supported variant must reproduce the scalar sweep gains and ν
// marginals bit for bit — across saturation-word boundary pool sizes,
// with and without seeds folded in (seeds exercise the saturated-sample
// skip), and over chunked sub-ranges whose cuts are NOT slab-aligned.
TEST_F(GainKernelTest, SweepGainsBitIdenticalAcrossKernels) {
  const std::vector<GainKernelKind> kinds = supported_kernels();
  const auto n = static_cast<std::size_t>(graph_.node_count());
  for (const std::uint64_t samples : {0ULL, 1ULL, 63ULL, 64ULL, 65ULL,
                                      130ULL, 1200ULL}) {
    const RicPool pool = make_pool(graph_, samples, 2, samples + 5);
    const auto size = static_cast<std::uint32_t>(pool.size());
    for (const int seeded : {0, 1}) {
      CoverageState state(pool);
      if (seeded != 0) {
        for (const NodeId v : {3U, 11U, 42U}) state.add_seed(v);
      }
      // Scalar reference: full range plus an unaligned chunking.
      std::vector<std::uint64_t> ref_influenced(n, 0);
      std::vector<double> ref_nu(n, 0.0);
      std::vector<double> ref_marginal(n, 0.0);
      {
        const KernelGuard guard(GainKernelKind::kScalar);
        state.accumulate_influenced_gains(0, size, ref_influenced.data());
        state.accumulate_nu_gains(0, size, ref_nu.data());
        for (NodeId v = 0; v < n; ++v) {
          ref_marginal[v] = state.marginal_nu(v);
        }
      }
      for (const GainKernelKind kind : kinds) {
        const KernelGuard guard(kind);
        std::vector<std::uint64_t> influenced(n, 0);
        std::vector<double> nu(n, 0.0);
        state.accumulate_influenced_gains(0, size, influenced.data());
        state.accumulate_nu_gains(0, size, nu.data());
        EXPECT_TRUE(bits_equal(ref_influenced, influenced))
            << gain_kernel_name(kind) << " influenced, samples=" << samples
            << " seeded=" << seeded;
        EXPECT_TRUE(bits_equal(ref_nu, nu))
            << gain_kernel_name(kind) << " nu, samples=" << samples
            << " seeded=" << seeded;
        std::vector<double> marginal(n, 0.0);
        for (NodeId v = 0; v < n; ++v) marginal[v] = state.marginal_nu(v);
        EXPECT_TRUE(bits_equal(ref_marginal, marginal))
            << gain_kernel_name(kind) << " marginal_nu, samples="
            << samples << " seeded=" << seeded;
        // Chunked ĉ ranges with word-straddling cuts sum to the full pass
        // (integer gains are partition-independent) — this drives the
        // kernels' partial-word masks at both ends of a range.
        if (size >= 2) {
          std::vector<std::uint64_t> chunked(n, 0);
          const std::uint32_t cut1 = std::min<std::uint32_t>(1, size);
          const std::uint32_t cut2 =
              std::min<std::uint32_t>(65, size - 1);
          state.accumulate_influenced_gains(0, cut1, chunked.data());
          state.accumulate_influenced_gains(std::min(cut1, cut2), cut2,
                                            chunked.data());
          state.accumulate_influenced_gains(cut2, size, chunked.data());
          EXPECT_TRUE(bits_equal(ref_influenced, chunked))
              << gain_kernel_name(kind) << " chunked, samples=" << samples
              << " seeded=" << seeded;
        }
      }
    }
  }
}

// Selection end to end: greedy_c_hat and celf_greedy_nu must pick the
// bit-identical seed sets (and ν/ĉ values) under every kernel variant,
// thread count, and shard override.
TEST_F(GainKernelTest, SelectionInvariantUnderKernelShardsThreads) {
  const RicPool pool = make_pool(graph_, 1200, 2, 9);
  GreedyResult ref_c_hat;
  GreedyResult ref_celf;
  {
    const KernelGuard guard(GainKernelKind::kScalar);
    ref_c_hat = greedy_c_hat(pool, 8, GreedyOptions{});
    ref_celf = celf_greedy_nu(pool, 8, GreedyOptions{});
  }
  ASSERT_EQ(ref_c_hat.seeds.size(), 8U);
  for (const GainKernelKind kind : supported_kernels()) {
    const KernelGuard guard(kind);
    const GreedyResult serial_c = greedy_c_hat(pool, 8, GreedyOptions{});
    EXPECT_EQ(serial_c.seeds, ref_c_hat.seeds) << gain_kernel_name(kind);
    EXPECT_EQ(serial_c.c_hat, ref_c_hat.c_hat) << gain_kernel_name(kind);
    EXPECT_EQ(serial_c.nu, ref_c_hat.nu) << gain_kernel_name(kind);
    const GreedyResult serial_nu = celf_greedy_nu(pool, 8, GreedyOptions{});
    EXPECT_EQ(serial_nu.seeds, ref_celf.seeds) << gain_kernel_name(kind);
    EXPECT_EQ(serial_nu.nu, ref_celf.nu) << gain_kernel_name(kind);
    for (const unsigned threads : {2U, 8U}) {
      ThreadPool workers(threads);
      for (const std::size_t shards : {0UL, 1UL, 3UL, 7UL}) {
        GreedyOptions options;
        options.parallel = true;
        options.pool = &workers;
        options.min_parallel_candidates = 1;
        options.shards = shards;
        const GreedyResult par_c = greedy_c_hat(pool, 8, options);
        EXPECT_EQ(par_c.seeds, ref_c_hat.seeds)
            << gain_kernel_name(kind) << " threads=" << threads
            << " shards=" << shards;
        EXPECT_EQ(par_c.c_hat, ref_c_hat.c_hat)
            << gain_kernel_name(kind) << " threads=" << threads
            << " shards=" << shards;
        const GreedyResult par_nu = celf_greedy_nu(pool, 8, options);
        EXPECT_EQ(par_nu.seeds, ref_celf.seeds)
            << gain_kernel_name(kind) << " threads=" << threads
            << " shards=" << shards;
        EXPECT_EQ(par_nu.nu, ref_celf.nu)
            << gain_kernel_name(kind) << " threads=" << threads
            << " shards=" << shards;
      }
    }
  }
}

TEST(SelectionShardsTest, CoversRangeWithAlignedBoundaries) {
  for (const std::uint64_t samples :
       {1ULL, 63ULL, 64ULL, 65ULL, 129ULL, 1000ULL, 40000ULL}) {
    for (const unsigned shards : {1U, 2U, 3U, 7U, 8U, 64U}) {
      const auto out = RicPool::selection_shards(samples, shards);
      ASSERT_FALSE(out.empty()) << samples << "/" << shards;
      EXPECT_LE(out.size(), static_cast<std::size_t>(shards));
      EXPECT_EQ(out.front().begin, 0U);
      EXPECT_EQ(out.back().end, samples);
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_LT(out[i].begin, out[i].end);
        if (i > 0) {
          EXPECT_EQ(out[i].begin, out[i - 1].end);
        }
        // Every interior boundary owns whole saturation words.
        if (i + 1 < out.size()) {
          EXPECT_EQ(out[i].end % 64, 0U);
        }
      }
    }
  }
}

TEST(SelectionShardsTest, EdgeCases) {
  EXPECT_TRUE(RicPool::selection_shards(0, 4).empty());
  // shards == 0 behaves like 1.
  const auto one = RicPool::selection_shards(100, 0);
  ASSERT_EQ(one.size(), 1U);
  EXPECT_EQ(one[0].begin, 0U);
  EXPECT_EQ(one[0].end, 100U);
  // More shards than samples: no empty shards, still full coverage.
  const auto tiny = RicPool::selection_shards(3, 16);
  ASSERT_EQ(tiny.size(), 1U);  // rounding to 64 merges them
  EXPECT_EQ(tiny[0].end, 3U);
}

}  // namespace
}  // namespace imc
