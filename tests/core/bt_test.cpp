#include "core/bt.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "community/threshold_policy.h"
#include "core/brute_force.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(Bt, SolvesGadget) {
  const test::NonSubmodularGadget gadget(0.5);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(800, 1);
  const BtSolution solution = bt_solve(pool, 2);
  EXPECT_EQ(solution.seeds.size(), 2U);
  EXPECT_GT(solution.c_hat, 0.0);
  EXPECT_NE(solution.center, kInvalidNode);
  EXPECT_EQ(solution.seeds[0], solution.center);
  EXPECT_GT(solution.centers_tried, 0U);
}

TEST(Bt, RejectsThresholdAboveDepth) {
  const Graph graph = test::path_graph(6, 0.5);
  CommunitySet communities(6, {{0, 1, 2}});
  communities.set_threshold(0, 3);
  RicPool pool(graph, communities);
  pool.grow(50, 2);
  EXPECT_THROW((void)bt_solve(pool, 2), std::invalid_argument);  // default d = 2
  BtConfig config;
  config.depth = 3;
  EXPECT_NO_THROW((void)bt_solve(pool, 2, config));
}

TEST(Bt, RejectsBadArguments) {
  const test::NonSubmodularGadget gadget;
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(10, 3);
  EXPECT_THROW((void)bt_solve(pool, 0), std::invalid_argument);
  BtConfig config;
  config.depth = 0;
  EXPECT_THROW((void)bt_solve(pool, 1, config), std::invalid_argument);
}

TEST(Bt, Theorem4BoundHolds) {
  // ĉ(BT) >= (1 − 1/e)/k · ĉ(OPT) for h <= 2; property-checked against
  // brute force on random small instances.
  for (const std::uint64_t trial : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    Rng rng(trial * 11);
    BarabasiAlbertConfig config;
    config.nodes = 20;
    config.attach = 2;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_uniform_weights(edges, 0.35);
    const Graph graph(config.nodes, edges);
    CommunitySet communities = test::chunk_communities(20, 4);
    apply_constant_thresholds(communities, 2);
    RicPool pool(graph, communities);
    pool.grow(200, trial);

    const std::uint32_t k = 3;
    const BtSolution bt = bt_solve(pool, k);
    const BruteForceResult opt = brute_force_maxr(pool, k, 50'000'000);
    const double bound =
        (1.0 - 1.0 / 2.718281828) / static_cast<double>(k) * opt.c_hat;
    EXPECT_GE(bt.c_hat + 1e-9, bound) << "trial " << trial;
  }
}

TEST(Bt, CandidateLimitShrinksWork) {
  const test::NonSubmodularGadget gadget(0.5);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(400, 4);
  BtConfig limited;
  limited.candidate_limit = 1;
  const BtSolution solution = bt_solve(pool, 2, limited);
  EXPECT_EQ(solution.centers_tried, 1U);
}

TEST(Bt, DeadlineReturnsPartialResult) {
  Rng rng(5);
  BarabasiAlbertConfig config;
  config.nodes = 120;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  const Graph graph(config.nodes, edges);
  CommunitySet communities = test::chunk_communities(120, 4);
  apply_constant_thresholds(communities, 2);
  RicPool pool(graph, communities);
  pool.grow(1500, 5);

  BtConfig config_deadline;
  config_deadline.deadline_seconds = 1e-7;  // expire almost immediately
  const BtSolution solution = bt_solve(pool, 5, config_deadline);
  EXPECT_TRUE(solution.timed_out);
  EXPECT_FALSE(solution.seeds.empty());  // at least one center was tried
}

TEST(Bt, DepthThreeHandlesTripleThresholds) {
  // Tiny instance, h = 3: only BT(3) is admissible; it must find the
  // triple that covers the community.
  GraphBuilder builder;
  builder.reserve_nodes(6);
  builder.add_edge(3, 0, 1.0);
  builder.add_edge(4, 1, 1.0);
  builder.add_edge(5, 2, 1.0);
  const Graph graph = builder.build();
  CommunitySet communities(6, {{0, 1, 2}});
  communities.set_threshold(0, 3);
  RicPool pool(graph, communities);
  pool.grow(60, 6);

  BtConfig config;
  config.depth = 3;
  const BtSolution solution = bt_solve(pool, 3, config);
  EXPECT_EQ(solution.seeds.size(), 3U);
  EXPECT_DOUBLE_EQ(solution.c_hat, communities.total_benefit());
}

TEST(Bt, CenterAppearsInEverySolution) {
  const test::NonSubmodularGadget gadget(0.4);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(300, 7);
  for (const std::uint32_t k : {1U, 2U, 3U}) {
    const BtSolution solution = bt_solve(pool, k);
    ASSERT_FALSE(solution.seeds.empty());
    EXPECT_EQ(solution.seeds[0], solution.center);
    EXPECT_LE(solution.seeds.size(), k);
  }
}

TEST(Bt, AlphaShrinksWithDepthAndK) {
  BtSolver depth2{};
  BtConfig deep_config;
  deep_config.depth = 3;
  BtSolver depth3(deep_config);
  const test::NonSubmodularGadget gadget;
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(10, 8);
  EXPECT_GT(depth2.alpha(pool, 5), depth3.alpha(pool, 5));
  EXPECT_GT(depth2.alpha(pool, 2), depth2.alpha(pool, 10));
}

}  // namespace
}  // namespace imc
