#include "core/baselines/imm.h"

#include <gtest/gtest.h>

#include <set>

#include "core/baselines/im_ris.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(Imm, RejectsBadArguments) {
  const Graph graph = test::star_graph(5, 0.5);
  EXPECT_THROW((void)imm_select(graph, 0), std::invalid_argument);
  EXPECT_THROW((void)imm_select(graph, 9), std::invalid_argument);
  ImmConfig config;
  config.epsilon = 0.0;
  EXPECT_THROW((void)imm_select(graph, 1, config), std::invalid_argument);
}

TEST(Imm, PicksStarCenter) {
  const Graph graph = test::star_graph(40, 0.8);
  const ImmResult result = imm_select(graph, 1);
  ASSERT_EQ(result.seeds.size(), 1U);
  EXPECT_EQ(result.seeds[0], 0U);
  EXPECT_GT(result.rr_sets_used, 0U);
  EXPECT_GT(result.opt_lower_bound, 1.0);
}

TEST(Imm, SpreadEstimateMatchesMonteCarlo) {
  Rng rng(4);
  BarabasiAlbertConfig config;
  config.nodes = 200;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  const Graph graph(config.nodes, edges);

  const ImmResult result = imm_select(graph, 5);
  MonteCarloOptions mc;
  mc.simulations = 30000;
  const double truth = mc_expected_spread(graph, result.seeds, mc);
  EXPECT_NEAR(result.estimated_spread, truth, std::max(2.0, truth * 0.1));
}

TEST(Imm, DistinctSeeds) {
  const Graph graph = test::cycle_graph(30, 0.5);
  const ImmResult result = imm_select(graph, 6);
  const std::set<NodeId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), 6U);
}

TEST(Imm, ComparableToSsaStyleIm) {
  // Both IM solvers optimize the same objective; their seed quality should
  // be near-identical on a mid-size graph.
  Rng rng(6);
  BarabasiAlbertConfig config;
  config.nodes = 300;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  const Graph graph(config.nodes, edges);

  const ImmResult imm = imm_select(graph, 8);
  const ImRisResult ssa = im_ris_select(graph, 8);
  MonteCarloOptions mc;
  mc.simulations = 20000;
  const double imm_spread = mc_expected_spread(graph, imm.seeds, mc);
  const double ssa_spread = mc_expected_spread(graph, ssa.seeds, mc);
  EXPECT_NEAR(imm_spread, ssa_spread, std::max(3.0, ssa_spread * 0.1));
}

TEST(Imm, RespectsRrSetCap) {
  const Graph graph = test::cycle_graph(50, 0.3);
  ImmConfig config;
  config.max_rr_sets = 2000;
  const ImmResult result = imm_select(graph, 3, config);
  EXPECT_LE(result.rr_sets_used, 2000U);
  EXPECT_EQ(result.seeds.size(), 3U);
}

}  // namespace
}  // namespace imc
