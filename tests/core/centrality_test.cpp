#include "core/baselines/centrality.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "test_support.h"

namespace imc {
namespace {

TEST(PageRank, ScoresSumToOne) {
  const Graph graph = test::cycle_graph(10, 1.0);
  const auto scores = pagerank(graph);
  const double total = std::accumulate(scores.begin(), scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRank, SymmetricCycleIsUniform) {
  const Graph graph = test::cycle_graph(8, 1.0);
  const auto scores = pagerank(graph);
  for (const double score : scores) EXPECT_NEAR(score, 1.0 / 8.0, 1e-9);
}

TEST(PageRank, SinkAttractsMass) {
  // Star pointing INTO node 0: 0 accumulates rank.
  GraphBuilder builder;
  for (NodeId v = 1; v < 6; ++v) builder.add_edge(v, 0, 1.0);
  const Graph graph = builder.build();
  const auto scores = pagerank(graph);
  for (NodeId v = 1; v < 6; ++v) EXPECT_GT(scores[0], scores[v]);
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 -> 1, 1 dangling: ranks must still sum to 1.
  GraphBuilder builder;
  builder.reserve_nodes(3);
  builder.add_edge(0, 1, 1.0);
  const auto scores = pagerank(builder.build());
  EXPECT_NEAR(std::accumulate(scores.begin(), scores.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(scores[1], scores[2]);  // 1 receives from 0, 2 gets nothing
}

TEST(PageRank, RejectsBadDamping) {
  const Graph graph = test::path_graph(3, 1.0);
  PageRankConfig config;
  config.damping = 1.0;
  EXPECT_THROW((void)pagerank(graph, config), std::invalid_argument);
}

TEST(PageRank, SelectTopK) {
  GraphBuilder builder;
  for (NodeId v = 1; v < 8; ++v) builder.add_edge(v, 0, 1.0);
  const Graph graph = builder.build();
  const auto seeds = pagerank_select(graph, 1);
  ASSERT_EQ(seeds.size(), 1U);
  EXPECT_EQ(seeds[0], 0U);
  EXPECT_THROW((void)pagerank_select(graph, 0), std::invalid_argument);
}

TEST(DegreeDiscount, FirstPickIsMaxDegree) {
  const Graph graph = test::star_graph(12, 0.1);
  const auto seeds = degree_discount_select(graph, 1, 0.1);
  ASSERT_EQ(seeds.size(), 1U);
  EXPECT_EQ(seeds[0], 0U);
}

TEST(DegreeDiscount, DiscountsNeighborsOfChosenSeeds) {
  // Two stars sharing leaves: after picking hub A, its leaves are
  // discounted, so the second pick must be hub B rather than a leaf —
  // construct hubs 0 (degree 6) and 1 (degree 5) over shared leaves.
  GraphBuilder builder;
  for (NodeId leaf = 2; leaf < 8; ++leaf) builder.add_edge(0, leaf, 0.1);
  for (NodeId leaf = 2; leaf < 7; ++leaf) builder.add_edge(1, leaf, 0.1);
  // Give leaves an out-edge so their degree is nonzero but small.
  for (NodeId leaf = 2; leaf < 8; ++leaf) builder.add_edge(leaf, 0, 0.1);
  const Graph graph = builder.build();
  const auto seeds = degree_discount_select(graph, 2, 0.1);
  const std::set<NodeId> chosen(seeds.begin(), seeds.end());
  EXPECT_TRUE(chosen.contains(0));
  EXPECT_TRUE(chosen.contains(1));
}

TEST(DegreeDiscount, DistinctSeedsAndTopUp) {
  GraphBuilder builder;
  builder.reserve_nodes(6);  // edgeless
  const auto seeds = degree_discount_select(builder.build(), 4, 0.1);
  const std::set<NodeId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 4U);
}

TEST(DegreeDiscount, DefaultProbabilityFromGraph) {
  const Graph graph = test::star_graph(10, 0.25);
  // p <= 0 -> derive from mean edge weight; must not throw and must pick
  // the hub first.
  const auto seeds = degree_discount_select(graph, 2);
  EXPECT_EQ(seeds[0], 0U);
}

}  // namespace
}  // namespace imc
