#include "core/mb.h"

#include <gtest/gtest.h>

#include <cmath>

#include "community/threshold_policy.h"
#include "core/brute_force.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(Mb, KeepsBetterOfMafAndBt) {
  const test::NonSubmodularGadget gadget(0.4);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(800, 1);
  const MbSolution solution = mb_solve(pool, 2);
  EXPECT_GE(solution.c_hat, solution.maf.c_hat - 1e-12);
  EXPECT_GE(solution.c_hat, solution.bt.c_hat - 1e-12);
  if (solution.chose_bt) {
    EXPECT_EQ(solution.seeds, solution.bt.seeds);
  } else {
    EXPECT_EQ(solution.seeds, solution.maf.seeds);
  }
}

TEST(Mb, Theorem5BoundHolds) {
  // ĉ(MB) >= sqrt((1 − 1/e)·⌊k/2⌋/(r·k)) · ĉ(OPT) for h <= 2.
  for (const std::uint64_t trial : {1ULL, 2ULL, 3ULL}) {
    Rng rng(trial * 13);
    BarabasiAlbertConfig config;
    config.nodes = 18;
    config.attach = 2;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_uniform_weights(edges, 0.3);
    const Graph graph(config.nodes, edges);
    CommunitySet communities = test::chunk_communities(18, 3);
    apply_constant_thresholds(communities, 2);
    RicPool pool(graph, communities);
    pool.grow(200, trial);

    const std::uint32_t k = 4;
    const MbSolution mb = mb_solve(pool, k);
    const BruteForceResult opt = brute_force_maxr(pool, k, 50'000'000);
    const double r = communities.size();
    const double bound =
        std::sqrt((1.0 - 1.0 / 2.718281828) * std::floor(k / 2.0) /
                  (r * k)) *
        opt.c_hat;
    EXPECT_GE(mb.c_hat + 1e-9, bound) << "trial " << trial;
  }
}

TEST(Mb, AlphaMatchesTheorem5) {
  const test::NonSubmodularGadget gadget;
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(20, 2);
  MbSolver solver;
  // r = 1, k = 4: sqrt((1 − 1/e)·2/4) ≈ 0.562.
  EXPECT_NEAR(solver.alpha(pool, 4),
              std::sqrt((1.0 - 1.0 / 2.718281828459045) * 2.0 / 4.0), 1e-9);
  EXPECT_EQ(solver.name(), "MB");
}

TEST(Mb, PropagatesBtDeadline) {
  Rng rng(3);
  BarabasiAlbertConfig config;
  config.nodes = 100;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  const Graph graph(config.nodes, edges);
  CommunitySet communities = test::chunk_communities(100, 4);
  apply_constant_thresholds(communities, 2);
  RicPool pool(graph, communities);
  pool.grow(800, 3);

  BtConfig bt_config;
  bt_config.deadline_seconds = 1e-7;
  const MbSolution solution = mb_solve(pool, 4, bt_config);
  EXPECT_TRUE(solution.bt.timed_out);
  EXPECT_FALSE(solution.seeds.empty());
}

}  // namespace
}  // namespace imc
