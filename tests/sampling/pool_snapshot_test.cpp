#include "sampling/pool_snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "community/threshold_policy.h"
#include "core/engine.h"
#include "sampling/pool_io.h"
#include "core/maxr_solver.h"
#include "test_support.h"
#include "util/mathx.h"

namespace imc {
namespace {

struct Fixture {
  Graph graph;
  CommunitySet communities;

  Fixture() {
    graph = test::cycle_graph(12, 0.5);
    communities = test::chunk_communities(12, 3);
    apply_population_benefits(communities);
    apply_constant_thresholds(communities, 2);
  }
};

/// Full structural comparison down to the arenas — the "restored pool IS
/// the saved pool" contract, CSR index and epoch watermark included.
void expect_pools_bit_identical(const RicPool& loaded,
                                const RicPool& original) {
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.model(), original.model());
  EXPECT_EQ(loaded.grow_epoch(), original.grow_epoch());
  EXPECT_TRUE(std::equal(loaded.thresholds().begin(),
                         loaded.thresholds().end(),
                         original.thresholds().begin(),
                         original.thresholds().end()));
  EXPECT_TRUE(std::equal(loaded.source_communities().begin(),
                         loaded.source_communities().end(),
                         original.source_communities().begin(),
                         original.source_communities().end()));
  EXPECT_TRUE(std::equal(loaded.community_frequencies().begin(),
                         loaded.community_frequencies().end(),
                         original.community_frequencies().begin(),
                         original.community_frequencies().end()));
  for (std::uint32_t g = 0; g < original.size(); ++g) {
    const auto mine = loaded.sample_touches(g);
    const auto theirs = original.sample_touches(g);
    ASSERT_TRUE(
        std::equal(mine.begin(), mine.end(), theirs.begin(), theirs.end()))
        << "sample-major arena diverges at sample " << g;
  }
  ASSERT_TRUE(std::equal(loaded.touch_offsets().begin(),
                         loaded.touch_offsets().end(),
                         original.touch_offsets().begin(),
                         original.touch_offsets().end()));
  const auto arena = loaded.touch_arena();
  const auto expected = original.touch_arena();
  ASSERT_EQ(arena.size(), expected.size());
  for (std::size_t i = 0; i < arena.size(); ++i) {
    ASSERT_EQ(arena[i].sample, expected[i].sample) << "arena slot " << i;
    ASSERT_EQ(arena[i].threshold, expected[i].threshold)
        << "arena slot " << i;
    ASSERT_EQ(arena[i].mask, expected[i].mask) << "arena slot " << i;
  }
}

std::string snapshot_bytes(const RicPool& pool) {
  std::ostringstream out(std::ios::binary);
  write_ric_pool_snapshot(out, pool);
  return out.str();
}

std::string temp_snapshot(const RicPool& pool, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  save_ric_pool_snapshot(path, pool);
  return path;
}

TEST(PoolSnapshot, StreamedRoundTripIsBitIdentical) {
  const Fixture fixture;
  RicPool original(fixture.graph, fixture.communities);
  original.grow(250, 41);

  std::istringstream in(snapshot_bytes(original), std::ios::binary);
  const RicPool loaded =
      read_ric_pool_snapshot(in, fixture.graph, fixture.communities);
  EXPECT_FALSE(loaded.attached());
  expect_pools_bit_identical(loaded, original);

  const std::vector<NodeId> seeds{0, 5, 9};
  EXPECT_DOUBLE_EQ(loaded.c_hat(seeds), original.c_hat(seeds));
  EXPECT_DOUBLE_EQ(loaded.nu(seeds), original.nu(seeds));
}

TEST(PoolSnapshot, StreamedRoundTripIntoMmapBackend) {
  const Fixture fixture;
  RicPool original(fixture.graph, fixture.communities);
  original.grow(120, 7);
  std::istringstream in(snapshot_bytes(original), std::ios::binary);
  const RicPool loaded = read_ric_pool_snapshot(
      in, fixture.graph, fixture.communities, ArenaBackend::kMmap);
  EXPECT_EQ(loaded.backend(), ArenaBackend::kMmap);
  expect_pools_bit_identical(loaded, original);
}

TEST(PoolSnapshot, MmapAttachIsBitIdenticalAndZeroCopy) {
  const Fixture fixture;
  RicPool original(fixture.graph, fixture.communities);
  original.grow(250, 41);
  const std::string path = temp_snapshot(original, "imc_snap_attach.bin");

  const RicPool attached =
      attach_ric_pool_snapshot(path, fixture.graph, fixture.communities);
  EXPECT_TRUE(attached.attached());
  expect_pools_bit_identical(attached, original);
  std::remove(path.c_str());
}

TEST(PoolSnapshot, AttachedPoolSurvivesSnapshotFileRemoval) {
  // POSIX semantics: the mapping pins the inode, so an attached pool keeps
  // serving reads after the snapshot file is unlinked.
  const Fixture fixture;
  RicPool original(fixture.graph, fixture.communities);
  original.grow(60, 3);
  const std::string path = temp_snapshot(original, "imc_snap_unlink.bin");
  const RicPool attached =
      attach_ric_pool_snapshot(path, fixture.graph, fixture.communities);
  std::remove(path.c_str());
  const std::vector<NodeId> seeds{1, 4};
  EXPECT_DOUBLE_EQ(attached.c_hat(seeds), original.c_hat(seeds));
}

TEST(PoolSnapshot, AttachThenGrowCopyOnWriteMatchesStraightGrowth) {
  // grow() after attach must (a) materialize the borrowed arenas and
  // (b) continue the RNG substream schedule exactly where the saved pool
  // stopped — so attach+grow == grow-straight-through, bit for bit.
  const Fixture fixture;
  RicPool original(fixture.graph, fixture.communities);
  original.grow(150, 77);
  const std::string path = temp_snapshot(original, "imc_snap_cow.bin");

  RicPool attached =
      attach_ric_pool_snapshot(path, fixture.graph, fixture.communities);
  ASSERT_TRUE(attached.attached());
  attached.grow(100, 77);
  EXPECT_FALSE(attached.attached());

  original.grow(100, 77);
  expect_pools_bit_identical(attached, original);
  std::remove(path.c_str());
}

TEST(PoolSnapshot, RestoredEpochValidatesWarmStartWatermarks) {
  // The epoch watermark written at save time is restored verbatim: a
  // PoolEpoch captured against the saved pool (what PR-5 warm-start
  // carriers hold) must validate against the reloaded pool.
  const Fixture fixture;
  RicPool original(fixture.graph, fixture.communities);
  original.grow(80, 5);
  original.grow(40, 5);
  const RicPool::PoolEpoch epoch = original.grow_epoch();

  std::istringstream in(snapshot_bytes(original), std::ios::binary);
  const RicPool loaded =
      read_ric_pool_snapshot(in, fixture.graph, fixture.communities);
  EXPECT_EQ(loaded.grow_epoch(), epoch);
  EXPECT_EQ(loaded.samples_since(epoch), 0U);
}

TEST(PoolSnapshot, LoadAnyDispatchesOnMagic) {
  const Fixture fixture;
  RicPool pool(fixture.graph, fixture.communities);
  pool.grow(30, 5);

  const std::string binary = temp_snapshot(pool, "imc_snap_any.bin");
  const RicPool from_binary =
      load_ric_pool_any(binary, fixture.graph, fixture.communities);
  EXPECT_TRUE(from_binary.attached());
  expect_pools_bit_identical(from_binary, pool);

  const std::string text = ::testing::TempDir() + "/imc_snap_any.txt";
  save_ric_pool(text, pool);
  EXPECT_FALSE(is_pool_snapshot_file(text));
  const RicPool from_text =
      load_ric_pool_any(text, fixture.graph, fixture.communities);
  EXPECT_FALSE(from_text.attached());
  // The text v1 format does not persist the epoch watermark (its loader
  // replays one append per sample), so compare content, not the epoch.
  ASSERT_EQ(from_text.size(), pool.size());
  const std::vector<NodeId> probe{0, 5, 9};
  EXPECT_DOUBLE_EQ(from_text.c_hat(probe), pool.c_hat(probe));
  EXPECT_DOUBLE_EQ(from_text.nu(probe), pool.nu(probe));

  std::remove(binary.c_str());
  std::remove(text.c_str());
}

// ---------------------------------------------------------------------------
// Corrupted-file corpus: every rejection path, with its pinned diagnostic.

/// Section layout mirror (same math as the implementation) so corpus
/// entries can patch payload bytes and re-seal the checksum.
struct Layout {
  std::size_t offset[7];
  std::size_t bytes[7];

  explicit Layout(const PoolSnapshotHeader& header) {
    const std::size_t raw[7] = {
        header.sample_count * sizeof(std::uint32_t),
        header.sample_count * sizeof(CommunityId),
        header.community_count * sizeof(std::uint32_t),
        (header.sample_count + 1) * sizeof(std::uint64_t),
        header.sample_pair_count * sizeof(std::pair<NodeId, std::uint64_t>),
        (header.node_count + 1) * sizeof(std::uint64_t),
        header.csr_touch_count * sizeof(RicPool::Touch),
    };
    std::size_t cursor = 128;
    for (int i = 0; i < 7; ++i) {
      offset[i] = cursor;
      bytes[i] = raw[i];
      cursor += detail::round_up_64(raw[i]);
    }
  }
};

PoolSnapshotHeader header_of(const std::string& blob) {
  PoolSnapshotHeader header;
  std::memcpy(&header, blob.data(), sizeof(header));
  return header;
}

/// Recomputes the v3 header checksum after a test patched header fields,
/// so the corpus can target validation stages BEHIND the header seal.
void reseal_header(std::string& blob) {
  PoolSnapshotHeader header = header_of(blob);
  Fnv1a64 digest;
  digest.add_bytes(&header, offsetof(PoolSnapshotHeader, header_checksum));
  header.header_checksum = digest.value();
  std::memcpy(blob.data(), &header, sizeof(header));
}

/// Recomputes the payload checksum after a test patched section bytes, so
/// the corpus can target validation stages BEHIND the checksum gate.
/// Reseals the header too (the payload checksum lives inside it).
void reseal_checksum(std::string& blob) {
  PoolSnapshotHeader header = header_of(blob);
  const Layout layout(header);
  Fnv1a64 digest;
  for (int i = 0; i < 7; ++i) {
    digest.add_bytes(blob.data() + layout.offset[i], layout.bytes[i]);
  }
  header.payload_checksum = digest.value();
  std::memcpy(blob.data(), &header, sizeof(header));
  reseal_header(blob);
}

std::string streamed_error(const Fixture& fixture, const std::string& blob) {
  std::istringstream in(blob, std::ios::binary);
  try {
    (void)read_ric_pool_snapshot(in, fixture.graph, fixture.communities);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  ADD_FAILURE() << "snapshot loader accepted corrupt input";
  return "";
}

std::string attach_error(const Fixture& fixture, const std::string& blob,
                         const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  std::string message;
  try {
    (void)attach_ric_pool_snapshot(path, fixture.graph,
                                   fixture.communities);
    ADD_FAILURE() << "snapshot attach accepted corrupt input: " << name;
  } catch (const std::runtime_error& error) {
    message = error.what();
  }
  std::remove(path.c_str());
  return message;
}

class PoolSnapshotCorpus : public ::testing::Test {
 protected:
  Fixture fixture_;
  std::string blob_;

  void SetUp() override {
    RicPool pool(fixture_.graph, fixture_.communities);
    pool.grow(50, 13);
    blob_ = snapshot_bytes(pool);
  }

  /// Overwrites a header field given its byte offset inside the struct.
  template <typename T>
  void patch_header(std::size_t offset, T value) {
    std::memcpy(blob_.data() + offset, &value, sizeof(value));
  }
};

TEST_F(PoolSnapshotCorpus, BadMagic) {
  blob_[0] = 'X';
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: bad magic (not an imcpool2 snapshot)");
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_magic.bin"),
            "ric pool snapshot: bad magic (not an imcpool2 snapshot)");
}

TEST_F(PoolSnapshotCorpus, UnsupportedVersion) {
  patch_header<std::uint32_t>(offsetof(PoolSnapshotHeader, version), 9);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: unsupported version 9");
}

TEST_F(PoolSnapshotCorpus, RngContractMismatch) {
  patch_header<std::uint32_t>(offsetof(PoolSnapshotHeader, rng_contract),
                              kRicSamplerRngContract + 1);
  const std::string expected =
      "ric pool snapshot: rng contract mismatch (snapshot " +
      std::to_string(kRicSamplerRngContract + 1) + ", sampler " +
      std::to_string(kRicSamplerRngContract) + ")";
  EXPECT_EQ(streamed_error(fixture_, blob_), expected);
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_rng.bin"), expected);
}

TEST_F(PoolSnapshotCorpus, WrongGraphFingerprint) {
  // Same node count, different weights: only the fingerprint can tell.
  Fixture other;
  other.graph = test::cycle_graph(12, 0.9);
  EXPECT_EQ(streamed_error(other, blob_),
            "ric pool snapshot: graph fingerprint mismatch");
}

TEST_F(PoolSnapshotCorpus, WrongCommunityFingerprint) {
  // Same communities, different thresholds — exactly the mismatch that
  // would silently poison ν/MAF if attach accepted it.
  Fixture other;
  apply_constant_thresholds(other.communities, 3);
  EXPECT_EQ(streamed_error(other, blob_),
            "ric pool snapshot: community fingerprint mismatch");
  EXPECT_EQ(attach_error(other, blob_, "corpus_coms.bin"),
            "ric pool snapshot: community fingerprint mismatch");
}

TEST_F(PoolSnapshotCorpus, WrongNodeCount) {
  Fixture other;
  other.graph = test::cycle_graph(20, 0.5);
  other.communities = test::chunk_communities(20, 4);
  EXPECT_EQ(streamed_error(other, blob_),
            "ric pool snapshot: node count does not match the supplied "
            "graph");
}

TEST_F(PoolSnapshotCorpus, EpochWatermarkDisagreesWithSampleCount) {
  patch_header<std::uint64_t>(offsetof(PoolSnapshotHeader, epoch_samples),
                              51);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: epoch watermark disagrees with the sample "
            "count");
}

TEST_F(PoolSnapshotCorpus, ForgedRepairsEpochFailsHeaderChecksum) {
  // Satellite of the dynamic-graph work (DESIGN.md §16): forging the
  // repairs counter — to make a stale warm-start carrier validate against
  // a pre-repair snapshot — must trip the header seal, even on the
  // trusted attach path.
  patch_header<std::uint64_t>(offsetof(PoolSnapshotHeader, epoch_repairs),
                              7);
  const std::string expected =
      "ric pool snapshot: header checksum mismatch (tampered or corrupt "
      "header)";
  EXPECT_EQ(streamed_error(fixture_, blob_), expected);
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_repairs.bin"), expected);

  // Resealed, the same epoch loads fine and surfaces through the pool's
  // watermark — the counter genuinely round-trips.
  reseal_header(blob_);
  std::istringstream in(blob_, std::ios::binary);
  const RicPool loaded =
      read_ric_pool_snapshot(in, fixture_.graph, fixture_.communities);
  EXPECT_EQ(loaded.grow_epoch().repairs, 7U);
}

TEST_F(PoolSnapshotCorpus, TruncatedHeader) {
  blob_.resize(100);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: truncated header");
}

TEST_F(PoolSnapshotCorpus, TruncatedArenaSection) {
  blob_.resize(blob_.size() - 64);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: truncated arena section");
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_trunc.bin"),
            "ric pool snapshot: snapshot file size disagrees with its "
            "declared payload");
}

TEST_F(PoolSnapshotCorpus, TrailingGarbage) {
  blob_ += "garbage";
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: trailing bytes after the last arena "
            "section");
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_trail.bin"),
            "ric pool snapshot: snapshot file size disagrees with its "
            "declared payload");
}

TEST_F(PoolSnapshotCorpus, FlippedPayloadByteFailsChecksum) {
  blob_[200] = static_cast<char>(blob_[200] ^ 0x40);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: payload checksum mismatch (corrupt "
            "snapshot)");
}

TEST_F(PoolSnapshotCorpus, OutOfRangeCommunityBehindValidChecksum) {
  // Patch a source-community entry out of range AND re-seal the checksum:
  // this must die in deep validation, not slip through as "checksum ok".
  const Layout layout(header_of(blob_));
  const CommunityId bogus = 7;
  std::memcpy(blob_.data() + layout.offset[1], &bogus, sizeof(bogus));
  reseal_checksum(blob_);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: sample 0: community id out of range");
  // The attach path verifies payloads by default, so the same corruption
  // dies at load time there too.
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_community.bin"),
            "ric pool snapshot: sample 0: community id out of range");
}

TEST_F(PoolSnapshotCorpus, TouchingNodeOutOfRangeBehindValidChecksum) {
  const Layout layout(header_of(blob_));
  const NodeId bogus = 99;  // > node_count = 12
  std::memcpy(blob_.data() + layout.offset[4], &bogus, sizeof(bogus));
  reseal_checksum(blob_);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: sample 0: touching node out of range");
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_node.bin"),
            "ric pool snapshot: sample 0: touching node out of range");
}

TEST_F(PoolSnapshotCorpus, FlippedPayloadByteFailsAttachChecksum) {
  blob_[200] = static_cast<char>(blob_[200] ^ 0x40);
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_attach_checksum.bin"),
            "ric pool snapshot: payload checksum mismatch (corrupt "
            "snapshot)");
}

TEST_F(PoolSnapshotCorpus, NonMonotoneSampleOffsetsBehindValidChecksum) {
  // offsets[1] pointing past the arena used to be dereferenced by the
  // validator itself (the monotone check ran a step too late): the
  // sample-0 content scan read pairs[0, huge) out of bounds. Now the
  // endpoints + monotonicity pre-pass rejects it before any indexing.
  const Layout layout(header_of(blob_));
  const std::uint64_t huge = ~std::uint64_t{0};
  std::memcpy(blob_.data() + layout.offset[3] + sizeof(std::uint64_t),
              &huge, sizeof(huge));
  reseal_checksum(blob_);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: sample 1: offsets not monotone");
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_monotone.bin"),
            "ric pool snapshot: sample 1: offsets not monotone");
}

TEST_F(PoolSnapshotCorpus, SampleOffsetsMustSpanTheArena) {
  // A final offset short of the arena would leave pairs unreachable (and
  // an oversized one would unbound every span): both are endpoint errors.
  PoolSnapshotHeader header = header_of(blob_);
  const Layout layout(header);
  const std::uint64_t bogus_end = header.sample_pair_count + 1;
  std::memcpy(blob_.data() + layout.offset[3] +
                  header.sample_count * sizeof(std::uint64_t),
              &bogus_end, sizeof(bogus_end));
  reseal_checksum(blob_);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: sample-major offsets do not span the "
            "sample arena");
}

TEST_F(PoolSnapshotCorpus, NonMonotoneTouchOffsetsBehindValidChecksum) {
  const Layout layout(header_of(blob_));
  const std::uint64_t huge = ~std::uint64_t{0};
  std::memcpy(blob_.data() + layout.offset[5] + sizeof(std::uint64_t),
              &huge, sizeof(huge));
  reseal_checksum(blob_);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: csr: touch offsets not monotone");
}

TEST_F(PoolSnapshotCorpus, HugePairCountOverflowsTheLayout) {
  // A pair count of 2^60 used to wrap the section size to a small value
  // that stayed self-consistent with payload_bytes; the layout math now
  // rejects counts it cannot represent.
  patch_header<std::uint64_t>(
      offsetof(PoolSnapshotHeader, sample_pair_count), std::uint64_t{1}
                                                           << 60);
  EXPECT_EQ(streamed_error(fixture_, blob_),
            "ric pool snapshot: header counts overflow the section layout");
  EXPECT_EQ(attach_error(fixture_, blob_, "corpus_overflow.bin"),
            "ric pool snapshot: header counts overflow the section layout");
}

TEST_F(PoolSnapshotCorpus, TrustedAttachSkipsContentButBoundsOffsets) {
  // kTrustPayload skips the O(pool) content checks (the out-of-range
  // community loads)...
  const Layout layout(header_of(blob_));
  const CommunityId bogus = 7;
  std::memcpy(blob_.data() + layout.offset[1], &bogus, sizeof(bogus));
  reseal_checksum(blob_);
  const std::string path = ::testing::TempDir() + "/corpus_trusted.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob_.data(), static_cast<std::streamsize>(blob_.size()));
  }
  const RicPool trusted = attach_ric_pool_snapshot(
      path, fixture_.graph, fixture_.communities,
      SnapshotTrust::kTrustPayload);
  EXPECT_EQ(trusted.size(), 50U);
  std::remove(path.c_str());

  // ...but restore_snapshot still rejects non-monotone offsets, so even a
  // trusted attach cannot produce wraparound spans during solves.
  std::string bent = blob_;
  const std::uint64_t huge = ~std::uint64_t{0};
  std::memcpy(bent.data() + layout.offset[3] + sizeof(std::uint64_t),
              &huge, sizeof(huge));
  reseal_checksum(bent);
  const std::string bent_path =
      ::testing::TempDir() + "/corpus_trusted_monotone.bin";
  {
    std::ofstream out(bent_path, std::ios::binary | std::ios::trunc);
    out.write(bent.data(), static_cast<std::streamsize>(bent.size()));
  }
  try {
    (void)attach_ric_pool_snapshot(bent_path, fixture_.graph,
                                   fixture_.communities,
                                   SnapshotTrust::kTrustPayload);
    ADD_FAILURE() << "trusted attach accepted non-monotone offsets";
  } catch (const std::runtime_error& error) {
    EXPECT_EQ(std::string(error.what()),
              "ric pool snapshot: RicPool::restore_snapshot: sample-major "
              "offsets not monotone");
  }
  std::remove(bent_path.c_str());
}

// ---------------------------------------------------------------------------
// Engine integration.

TEST(PoolSnapshotEngine, AttachPoolRestoresTheEngineState) {
  const Fixture fixture;
  ImcafConfig config;
  config.max_samples = 400;
  const auto solver = make_maxr_solver(MaxrAlgorithm::kUbg, {});

  // Cold engine: solve grows the pool; snapshot the result.
  ImcEngine cold(fixture.graph, fixture.communities, config);
  const ImcafResult cold_result = cold.solve(2, *solver);
  const std::string path =
      ::testing::TempDir() + "/imc_engine_attach.bin";
  save_ric_pool_snapshot(path, cold.pool());

  // Warm engine: attach the saved pool, then solve the same query. The
  // attached pool is the cold engine's final pool, so the solve sees the
  // same |R| and must pick the same seeds with the same objective.
  ImcEngine warm(fixture.graph, fixture.communities, config);
  warm.attach_pool(path);
  EXPECT_EQ(warm.pool().size(), cold.pool().size());
  EXPECT_TRUE(warm.pool().attached());
  const ImcafResult warm_result = warm.solve(2, *solver);
  EXPECT_EQ(warm_result.seeds, cold_result.seeds);
  EXPECT_DOUBLE_EQ(warm_result.c_hat, cold_result.c_hat);
  std::remove(path.c_str());
}

TEST(PoolSnapshotEngine, AttachPoolRejectsModelMismatch) {
  const Fixture fixture;
  RicPool lt_pool(fixture.graph, fixture.communities,
                  DiffusionModel::kLinearThreshold);
  lt_pool.grow(20, 3);
  const std::string path = ::testing::TempDir() + "/imc_engine_lt.bin";
  save_ric_pool_snapshot(path, lt_pool);

  ImcEngine engine(fixture.graph, fixture.communities, {});  // IC config
  EXPECT_THROW(engine.attach_pool(path), std::invalid_argument);
  // Failure left the engine's own pool untouched.
  EXPECT_EQ(engine.pool().size(), 0U);
  std::remove(path.c_str());
}

TEST(PoolSnapshotEngine, AttachPoolHonorsConfiguredBackend) {
  // Attaching used to leave the pool on the loaded arenas' backend (kMmap
  // for snapshots), silently overriding --pool-backend for all later
  // growth. The configured backend must survive the attach.
  const Fixture fixture;
  RicPool original(fixture.graph, fixture.communities);
  original.grow(40, 9);
  const std::string path = temp_snapshot(original, "imc_engine_backend.bin");

  ImcafConfig ram_config;  // pool_backend defaults to kRam
  ImcEngine engine(fixture.graph, fixture.communities, ram_config);
  engine.attach_pool(path);
  EXPECT_EQ(engine.pool().backend(), ArenaBackend::kRam);
  EXPECT_TRUE(engine.pool().attached());

  ImcafConfig mmap_config;
  mmap_config.pool_backend = ArenaBackend::kMmap;
  ImcEngine mmap_engine(fixture.graph, fixture.communities, mmap_config);
  mmap_engine.attach_pool(path, SnapshotTrust::kTrustPayload);
  EXPECT_EQ(mmap_engine.pool().backend(), ArenaBackend::kMmap);

  // The text v1 path routes the backend through load_ric_pool too.
  const std::string text = ::testing::TempDir() + "/imc_engine_backend.txt";
  save_ric_pool(text, original);
  mmap_engine.attach_pool(text);
  EXPECT_EQ(mmap_engine.pool().backend(), ArenaBackend::kMmap);
  EXPECT_FALSE(mmap_engine.pool().attached());

  std::remove(path.c_str());
  std::remove(text.c_str());
}

TEST(PoolSnapshotEngine, MmapBackendConfigIsBitIdenticalToRam) {
  const Fixture fixture;
  const auto solver = make_maxr_solver(MaxrAlgorithm::kUbg, {});
  ImcafConfig ram_config;
  ram_config.max_samples = 300;
  ImcafConfig mmap_config = ram_config;
  mmap_config.pool_backend = ArenaBackend::kMmap;

  ImcEngine ram_engine(fixture.graph, fixture.communities, ram_config);
  ImcEngine mmap_engine(fixture.graph, fixture.communities, mmap_config);
  const ImcafResult ram_result = ram_engine.solve(2, *solver);
  const ImcafResult mmap_result = mmap_engine.solve(2, *solver);
  EXPECT_EQ(ram_result.seeds, mmap_result.seeds);
  EXPECT_DOUBLE_EQ(ram_result.c_hat, mmap_result.c_hat);
  expect_pools_bit_identical(mmap_engine.pool(), ram_engine.pool());
}

}  // namespace
}  // namespace imc
