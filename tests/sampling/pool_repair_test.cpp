// RicPool::invalidate_and_repair (DESIGN.md §16): a repaired pool must be
// bit-identical to rebuilding from scratch on the mutated graph/community
// structures with the same seed — arenas, metadata, counters and the CSR
// index alike — while regenerating only the affected samples. Also covers
// the epoch bump (carrier/staging invalidation), the snapshot interplay
// and ImcEngine::apply_delta end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "community/threshold_policy.h"
#include "core/engine.h"
#include "core/ubg.h"
#include "graph/delta.h"
#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "graph/weights.h"
#include "sampling/pool_snapshot.h"
#include "sampling/ric_pool.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imc {
namespace {

Graph make_graph(std::uint64_t seed = 77, NodeId nodes = 120) {
  Rng rng(seed);
  BarabasiAlbertConfig config;
  config.nodes = nodes;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  return Graph(config.nodes, edges);
}

CommunitySet make_communities(NodeId nodes = 120, std::uint32_t h = 2) {
  CommunitySet communities = test::chunk_communities(nodes, 6);
  apply_constant_thresholds(communities, h);
  apply_population_benefits(communities);
  return communities;
}

/// Bit-for-bit pool equality over every arena the snapshot persists.
void expect_same_pool(const RicPool& a, const RicPool& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto a_thresholds = a.thresholds();
  const auto b_thresholds = b.thresholds();
  const auto a_sources = a.source_communities();
  const auto b_sources = b.source_communities();
  for (std::uint64_t g = 0; g < a.size(); ++g) {
    ASSERT_EQ(a_thresholds[g], b_thresholds[g]) << "threshold of " << g;
    ASSERT_EQ(a_sources[g], b_sources[g]) << "source of " << g;
  }
  const auto a_offsets = a.sample_offsets();
  const auto b_offsets = b.sample_offsets();
  ASSERT_EQ(a_offsets.size(), b_offsets.size());
  for (std::size_t i = 0; i < a_offsets.size(); ++i) {
    ASSERT_EQ(a_offsets[i], b_offsets[i]) << "sample offset " << i;
  }
  const auto a_pairs = a.sample_arena();
  const auto b_pairs = b.sample_arena();
  ASSERT_EQ(a_pairs.size(), b_pairs.size());
  for (std::size_t i = 0; i < a_pairs.size(); ++i) {
    ASSERT_EQ(a_pairs[i].first, b_pairs[i].first) << "pair node " << i;
    ASSERT_EQ(a_pairs[i].second, b_pairs[i].second) << "pair mask " << i;
  }
  const auto a_freq = a.community_frequencies();
  const auto b_freq = b.community_frequencies();
  ASSERT_EQ(a_freq.size(), b_freq.size());
  for (std::size_t c = 0; c < a_freq.size(); ++c) {
    ASSERT_EQ(a_freq[c], b_freq[c]) << "community frequency " << c;
  }
  const auto a_toff = a.touch_offsets();
  const auto b_toff = b.touch_offsets();
  ASSERT_EQ(a_toff.size(), b_toff.size());
  for (std::size_t i = 0; i < a_toff.size(); ++i) {
    ASSERT_EQ(a_toff[i], b_toff[i]) << "touch offset " << i;
  }
  const auto a_touch = a.touch_arena();
  const auto b_touch = b.touch_arena();
  ASSERT_EQ(a_touch.size(), b_touch.size());
  for (std::size_t i = 0; i < a_touch.size(); ++i) {
    ASSERT_EQ(a_touch[i].sample, b_touch[i].sample) << "touch " << i;
    ASSERT_EQ(a_touch[i].threshold, b_touch[i].threshold) << "touch " << i;
    ASSERT_EQ(a_touch[i].mask, b_touch[i].mask) << "touch " << i;
  }
}

constexpr std::uint64_t kSeed = 2024;
constexpr std::uint64_t kPoolSize = 1200;

TEST(PoolRepair, EdgeDeltaRepairEqualsRebuild) {
  Graph graph = make_graph();
  CommunitySet communities = make_communities();
  RicPool pool(graph, communities);
  pool.grow(kPoolSize, kSeed, /*parallel=*/false);

  GraphDelta delta;
  delta.upsert_edge(0, 57, 0.4).remove_edge(1, 0).upsert_edge(90, 3, 0.15);
  const DeltaEffects effects = apply_delta(graph, communities, delta);
  const RicPool::RepairStats stats =
      pool.invalidate_and_repair(effects, kSeed, /*parallel=*/false);
  EXPECT_EQ(stats.total, kPoolSize);
  EXPECT_GT(stats.repaired, 0U);
  EXPECT_LT(stats.repaired, kPoolSize);  // most samples must survive

  RicPool rebuilt(graph, communities);
  rebuilt.grow(kPoolSize, kSeed, /*parallel=*/false);
  expect_same_pool(pool, rebuilt);
}

TEST(PoolRepair, MembershipMoveRepairEqualsRebuild) {
  Graph graph = make_graph();
  CommunitySet communities = make_communities();
  RicPool pool(graph, communities);
  pool.grow(kPoolSize, kSeed, /*parallel=*/false);

  GraphDelta delta;
  delta.move_member(7, 5).move_member(30, 0);
  const DeltaEffects effects = apply_delta(graph, communities, delta);
  EXPECT_TRUE(effects.changed_in_nodes.empty());
  const RicPool::RepairStats stats =
      pool.invalidate_and_repair(effects, kSeed, /*parallel=*/false);
  // Exactly the samples sourced at the touched communities regenerate.
  std::uint64_t expected = 0;
  for (const CommunityId c : effects.changed_communities) {
    expected += pool.community_frequency(c);
  }
  EXPECT_EQ(stats.repaired, expected);

  RicPool rebuilt(graph, communities);
  rebuilt.grow(kPoolSize, kSeed, /*parallel=*/false);
  expect_same_pool(pool, rebuilt);
}

TEST(PoolRepair, ParallelRepairMatchesSerialAndRebuild) {
  for (const unsigned threads : {2U, 8U}) {
    Graph graph = make_graph();
    CommunitySet communities = make_communities();
    ThreadPool workers(threads);
    RicPool pool(graph, communities);
    pool.grow(kPoolSize, kSeed, /*parallel=*/true, &workers);

    GraphDelta delta;
    delta.upsert_edge(4, 11, 0.6).remove_edge(0, 2).move_member(19, 1);
    const DeltaEffects effects = apply_delta(graph, communities, delta);
    (void)pool.invalidate_and_repair(effects, kSeed, /*parallel=*/true,
                                     &workers);

    RicPool rebuilt(graph, communities);
    rebuilt.grow(kPoolSize, kSeed, /*parallel=*/false);
    expect_same_pool(pool, rebuilt);
  }
}

TEST(PoolRepair, CountersRecomputedNotDrifted) {
  // Satellite regression: community_frequency must equal a fresh build
  // after moves shuffle sample sources around (a drifted counter would
  // poison MAF's frequency term silently).
  Graph graph = make_graph(31);
  CommunitySet communities = make_communities();
  RicPool pool(graph, communities);
  pool.grow(600, kSeed, /*parallel=*/false);

  GraphDelta delta;
  delta.move_member(2, 3).move_member(40, 2).upsert_edge(5, 66, 0.3);
  const DeltaEffects effects = apply_delta(graph, communities, delta);
  (void)pool.invalidate_and_repair(effects, kSeed, /*parallel=*/false);

  RicPool fresh(graph, communities);
  fresh.grow(600, kSeed, /*parallel=*/false);
  std::uint64_t sum = 0;
  for (CommunityId c = 0; c < communities.size(); ++c) {
    EXPECT_EQ(pool.community_frequency(c), fresh.community_frequency(c))
        << "community " << c;
    sum += pool.community_frequency(c);
  }
  EXPECT_EQ(sum, pool.size());

  // ĉ and ν — the values CoverageState and the saturation sweeps derive —
  // agree with the fresh pool for a spread of seed sets.
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const auto seeds = rng.sample_without_replacement(
        graph.node_count(), 1 + static_cast<std::uint32_t>(rng.below(6)));
    EXPECT_EQ(pool.c_hat(seeds), fresh.c_hat(seeds));
    EXPECT_EQ(pool.nu(seeds), fresh.nu(seeds));
  }
}

TEST(PoolRepair, RepairBumpsEpochEvenWhenNoSampleWasAffected) {
  Graph graph = test::path_graph(8, 0.5);
  CommunitySet communities(8, {{0, 1}, {6, 7}});
  RicPool pool(graph, communities);
  pool.grow(50, kSeed, /*parallel=*/false);
  const RicPool::PoolEpoch before = pool.grow_epoch();
  EXPECT_EQ(pool.samples_since(before), 0U);

  // Inserting an edge into an untouched corner of the graph may repair
  // zero samples, but FUTURE samples could walk it: the epoch must bump so
  // staged arenas and carriers cannot survive.
  GraphDelta delta;
  delta.upsert_edge(2, 5, 0.0001);
  const DeltaEffects effects = apply_delta(graph, communities, delta);
  (void)pool.invalidate_and_repair(effects, kSeed, /*parallel=*/false);
  EXPECT_THROW((void)pool.samples_since(before), std::invalid_argument);
  EXPECT_EQ(pool.samples_since(pool.grow_epoch()), 0U);

  // An empty delta leaves the epoch alone.
  const RicPool::PoolEpoch after = pool.grow_epoch();
  (void)pool.invalidate_and_repair(DeltaEffects{}, kSeed,
                                   /*parallel=*/false);
  EXPECT_EQ(pool.samples_since(after), 0U);
}

TEST(PoolRepair, StagedArenaIsRejectedAfterRepair) {
  Graph graph = make_graph(11, 60);
  CommunitySet communities = make_communities(60, 1);
  RicPool pool(graph, communities);
  pool.grow(200, kSeed, /*parallel=*/false);

  PoolStagingArena staging;
  pool.stage_samples(100, kSeed, /*parallel=*/false, nullptr, [] {
    return false;
  }, staging);
  ASSERT_TRUE(staging.complete());

  GraphDelta delta;
  delta.upsert_edge(0, 59, 0.2);
  const DeltaEffects effects = apply_delta(graph, communities, delta);
  (void)pool.invalidate_and_repair(effects, kSeed, /*parallel=*/false);
  EXPECT_FALSE(staging.epoch() == pool.grow_epoch());
  EXPECT_THROW(pool.commit_staged(std::move(staging), /*parallel=*/false),
               std::invalid_argument);
  EXPECT_EQ(pool.size(), 200U);

  // Regrowing synchronously instead yields the rebuild-identical pool.
  pool.grow(100, kSeed, /*parallel=*/false);
  RicPool rebuilt(graph, communities);
  rebuilt.grow(300, kSeed, /*parallel=*/false);
  expect_same_pool(pool, rebuilt);
}

TEST(PoolRepair, RepairRejectsInvariantBreakingDeltaUntouched) {
  // An LT pool whose delta pushes a node's in-weight sum past 1 must be
  // rejected by the sampler rebuild with the pool untouched.
  Graph graph = test::cycle_graph(6, 0.8);
  CommunitySet communities(6, {{0, 1, 2}, {3, 4, 5}});
  RicPool pool(graph, communities, DiffusionModel::kLinearThreshold);
  pool.grow(40, kSeed, /*parallel=*/false);

  GraphDelta delta;
  delta.upsert_edge(3, 1, 0.9);  // node 1 now sums 0.8 + 0.9 > 1
  const DeltaEffects effects = apply_delta(graph, communities, delta);
  const RicPool::PoolEpoch before = pool.grow_epoch();
  EXPECT_THROW(
      (void)pool.invalidate_and_repair(effects, kSeed, /*parallel=*/false),
      std::invalid_argument);
  EXPECT_EQ(pool.samples_since(before), 0U);  // epoch not bumped
  EXPECT_EQ(pool.size(), 40U);
}

TEST(PoolRepair, SnapshotPersistsRepairsEpoch) {
  Graph graph = make_graph(5, 60);
  CommunitySet communities = make_communities(60, 1);
  const Graph old_graph = graph;  // pre-delta copies: the stale snapshot
  const CommunitySet old_communities = communities;  // binds to THESE
  RicPool pool(graph, communities);
  pool.grow(150, kSeed, /*parallel=*/false);

  const std::string path =
      (std::filesystem::temp_directory_path() / "imc_repair_epoch.snap")
          .string();
  save_ric_pool_snapshot(path, pool);  // saved with repairs == 0

  GraphDelta delta;
  delta.upsert_edge(0, 42, 0.3);
  const DeltaEffects effects = apply_delta(graph, communities, delta);
  (void)pool.invalidate_and_repair(effects, kSeed, /*parallel=*/false);
  const RicPool::PoolEpoch repaired = pool.grow_epoch();

  // A carrier captured against the repaired pool must NOT validate
  // against the stale pre-repair snapshot: the loaded epoch still says
  // repairs == 0.
  const RicPool loaded =
      load_ric_pool_snapshot(path, old_graph, old_communities);
  EXPECT_THROW((void)loaded.samples_since(repaired), std::invalid_argument);

  // And a snapshot of the repaired pool round-trips the repairs counter,
  // so the same carrier DOES validate after a save → load cycle.
  save_ric_pool_snapshot(path, pool);
  const RicPool reloaded =
      load_ric_pool_snapshot(path, graph, communities);
  EXPECT_EQ(reloaded.samples_since(repaired), 0U);
  expect_same_pool(pool, reloaded);
  std::filesystem::remove(path);
}

TEST(PoolRepair, WarmCarrierFallsBackColdAfterRepair) {
  Graph graph = make_graph();
  CommunitySet communities = make_communities();
  RicPool pool(graph, communities);
  pool.grow(800, kSeed, /*parallel=*/false);

  GreedyOptions options;
  UbgResume state;
  (void)ubg_resume(pool, 6, options, state);  // carrier captured pre-delta

  GraphDelta delta;
  delta.upsert_edge(2, 77, 0.5).move_member(10, 4);
  const DeltaEffects effects = apply_delta(graph, communities, delta);
  (void)pool.invalidate_and_repair(effects, kSeed, /*parallel=*/false);

  // The stale carrier must be detected (repairs epoch mismatch) and the
  // resume fall back to a cold solve on the repaired pool — bit-identical
  // to calling ubg_solve directly.
  const UbgSolution warm = ubg_resume(pool, 6, options, state);
  const UbgSolution cold = ubg_solve(pool, 6, options);
  EXPECT_EQ(warm.seeds, cold.seeds);
  EXPECT_EQ(warm.c_hat, cold.c_hat);
  EXPECT_EQ(warm.from_nu.seeds, cold.from_nu.seeds);
  EXPECT_EQ(warm.from_nu.nu, cold.from_nu.nu);
}

TEST(PoolRepair, EngineApplyDeltaRepairsAndSolvesCold) {
  ImcafConfig config;
  config.max_samples = 3000;
  config.seed = kSeed;
  config.parallel_sampling = false;

  GraphDelta delta;
  delta.upsert_edge(2, 77, 0.5).remove_edge(1, 0).move_member(10, 4);
  const UbgSolver solver;

  // Run the solve → delta → solve sequence twice from scratch: the whole
  // dynamic path must be deterministic, and the engine pool must equal a
  // from-scratch rebuild on the mutated structures after the repair.
  ImcafResult results[2];
  std::uint64_t pool_sizes[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    Graph graph = make_graph();
    CommunitySet communities = make_communities();
    ImcEngine engine(graph, communities, config);
    const ImcafResult first = engine.solve(8, solver);
    ASSERT_FALSE(first.seeds.empty());

    const RicPool::RepairStats stats =
        engine.apply_delta(graph, communities, delta);
    EXPECT_EQ(stats.total, engine.pool().size());
    if (run == 0) {
      RicPool rebuilt(graph, communities);
      rebuilt.grow(engine.pool().size(), kSeed, /*parallel=*/false);
      expect_same_pool(engine.pool(), rebuilt);
    }

    results[run] = engine.solve(8, solver);
    pool_sizes[run] = engine.pool().size();
    EXPECT_EQ(results[run].samples_used, pool_sizes[run]);
  }
  EXPECT_EQ(results[0].seeds, results[1].seeds);
  EXPECT_EQ(results[0].c_hat, results[1].c_hat);
  EXPECT_EQ(results[0].estimated_benefit, results[1].estimated_benefit);
  EXPECT_EQ(pool_sizes[0], pool_sizes[1]);
}

TEST(PoolRepair, EngineApplyDeltaChecksIdentity) {
  Graph graph = make_graph(3, 40);
  CommunitySet communities = make_communities(40, 1);
  ImcafConfig config;
  config.seed = kSeed;
  ImcEngine engine(graph, communities, config);
  Graph other = make_graph(3, 40);
  CommunitySet other_communities = make_communities(40, 1);
  GraphDelta delta;
  delta.upsert_edge(0, 1, 0.5);
  EXPECT_THROW((void)engine.apply_delta(other, communities, delta),
               std::invalid_argument);
  EXPECT_THROW((void)engine.apply_delta(graph, other_communities, delta),
               std::invalid_argument);
}

}  // namespace
}  // namespace imc
