// Linear-Threshold-mode reverse sampling (the paper's §II-A extension):
// RIC samples and RR sets drawn from the LT live-edge distribution.
#include <gtest/gtest.h>

#include <algorithm>

#include "community/threshold_policy.h"
#include "core/imcaf.h"
#include "core/maf.h"
#include "diffusion/monte_carlo.h"
#include "estimation/dagum.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_pool.h"
#include "sampling/rr_set.h"
#include "test_support.h"

namespace imc {
namespace {

Graph lt_ready_graph() {
  Rng rng(321);
  BarabasiAlbertConfig config;
  config.nodes = 60;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);  // in-weights sum to 1
  return Graph(config.nodes, edges);
}

TEST(RicLt, RejectsOverweightedGraphs) {
  GraphBuilder builder;
  builder.add_edge(0, 2, 0.8).add_edge(1, 2, 0.8);
  const Graph graph = builder.build();
  CommunitySet communities(3, {{2}});
  EXPECT_THROW(
      (void)RicSampler(graph, communities, DiffusionModel::kLinearThreshold),
      std::invalid_argument);
}

TEST(RicLt, SingleLiveInEdgePerNode) {
  // In LT mode every node realizes at most one in-edge, so for a singleton
  // source community the touched set is a PATH: |touching| nodes form a
  // chain, and each member mask is the community bit.
  const Graph graph = lt_ready_graph();
  CommunitySet communities(60, {{5}});
  RicSampler sampler(graph, communities, DiffusionModel::kLinearThreshold);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const RicSample g = sampler.generate(rng);
    // All masks are bit 0 (single member); no node can appear twice.
    for (const auto& [node, mask] : g.touching) {
      (void)node;
      EXPECT_EQ(mask, 1ULL);
    }
  }
}

TEST(RicLt, UnbiasedAgainstForwardLtSimulation) {
  const Graph graph = lt_ready_graph();
  CommunitySet communities = test::chunk_communities(60, 6);
  apply_population_benefits(communities);
  apply_fraction_thresholds(communities, 0.5);

  RicPool pool(graph, communities, DiffusionModel::kLinearThreshold);
  pool.grow(60000, 9);

  MonteCarloOptions mc;
  mc.simulations = 60000;
  mc.model = DiffusionModel::kLinearThreshold;
  const std::vector<NodeId> seeds{0, 7, 21};
  const double forward = mc_expected_benefit(graph, communities, seeds, mc);
  const double reverse = pool.c_hat(seeds);
  EXPECT_NEAR(reverse, forward, std::max(0.5, forward * 0.08));
}

TEST(RicLt, MutuallyExclusiveParentsUnderLt) {
  // Member m with two in-edges of weight 0.5: under IC both parents touch
  // the sample with probability 0.25; under LT the live in-edge is unique,
  // so the parents NEVER touch together. This separates the two live-edge
  // distributions exactly.
  GraphBuilder builder;
  builder.reserve_nodes(3);
  builder.add_edge(1, 0, 0.5).add_edge(2, 0, 0.5);
  const Graph graph = builder.build();
  CommunitySet communities(3, {{0}});
  RicSampler ic(graph, communities, DiffusionModel::kIndependentCascade);
  RicSampler lt(graph, communities, DiffusionModel::kLinearThreshold);
  Rng rng_ic(2), rng_lt(2);
  int ic_both = 0, lt_both = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const RicSample a = ic.generate(rng_ic);
    ic_both += (a.mask_of(1) != 0 && a.mask_of(2) != 0);
    const RicSample b = lt.generate(rng_lt);
    lt_both += (b.mask_of(1) != 0 && b.mask_of(2) != 0);
  }
  EXPECT_NEAR(static_cast<double>(ic_both) / kDraws, 0.25, 0.01);
  EXPECT_EQ(lt_both, 0);
}

TEST(RrSetLt, IsABackwardPath) {
  const Graph graph = lt_ready_graph();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const RrSet set = generate_rr_set_lt(graph, rng);
    EXPECT_GE(set.nodes.size(), 1U);
    EXPECT_TRUE(std::binary_search(set.nodes.begin(), set.nodes.end(),
                                   set.root));
  }
}

TEST(RrSetLt, CertainChainFollowsPath) {
  // 0 -> 1 -> 2 with weight 1: RR set of root 2 is {0, 1, 2}.
  const Graph graph = test::path_graph(3, 1.0);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const RrSet set = generate_rr_set_lt(graph, rng);
    if (set.root == 2) {
      EXPECT_EQ(set.nodes, (std::vector<NodeId>{0, 1, 2}));
    }
  }
}

TEST(RicLt, DagumSupportsLt) {
  const Graph graph = test::path_graph(5, 1.0);  // in-weights exactly 1
  CommunitySet communities(5, {{4}});
  DagumOptions options;
  options.model = DiffusionModel::kLinearThreshold;
  const std::vector<NodeId> seeds{0};
  const DagumEstimate estimate =
      dagum_estimate_benefit(graph, communities, seeds, options);
  EXPECT_TRUE(estimate.converged);
  EXPECT_NEAR(estimate.value, 1.0, 0.01);
}

TEST(RicLt, ImcafEndToEndUnderLt) {
  const Graph graph = lt_ready_graph();
  CommunitySet communities = test::chunk_communities(60, 5);
  apply_population_benefits(communities);
  apply_constant_thresholds(communities, 2);

  MafSolver solver;
  ImcafConfig config;
  config.model = DiffusionModel::kLinearThreshold;
  config.max_samples = 3000;
  const ImcafResult result =
      imcaf_solve(graph, communities, 5, solver, config);
  EXPECT_FALSE(result.seeds.empty());

  MonteCarloOptions mc;
  mc.simulations = 20000;
  mc.model = DiffusionModel::kLinearThreshold;
  const double truth =
      mc_expected_benefit(graph, communities, result.seeds, mc);
  EXPECT_NEAR(result.estimated_benefit, truth, std::max(1.0, truth * 0.2));
}

}  // namespace
}  // namespace imc
