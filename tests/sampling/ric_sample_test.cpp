#include "sampling/ric_sample.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "graph/algorithms.h"
#include "test_support.h"
#include "util/mathx.h"

namespace imc {
namespace {

CommunitySet two_communities() {
  // nodes 0..5; C0 = {0, 1}, C1 = {4, 5}; relays 2, 3 outside.
  CommunitySet set(6, {{0, 1}, {4, 5}});
  return set;
}

TEST(RicSampler, RejectsBadInputs) {
  const Graph graph = test::path_graph(6);
  CommunitySet empty;
  EXPECT_THROW((void)RicSampler(graph, empty), std::invalid_argument);

  CommunitySet wrong_n(4, {{0, 1}});
  EXPECT_THROW((void)RicSampler(graph, wrong_n), std::invalid_argument);

  std::vector<NodeId> huge(65);
  for (NodeId v = 0; v < 65; ++v) huge[v] = v;
  const Graph big_graph = test::path_graph(65);
  CommunitySet too_big(65, {huge});
  EXPECT_THROW((void)RicSampler(big_graph, too_big), std::invalid_argument);
}

TEST(RicSampler, MembersCarryOwnBit) {
  const Graph graph = test::path_graph(6, 0.5);
  const CommunitySet communities = two_communities();
  RicSampler sampler(graph, communities);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const RicSample g = sampler.generate(rng);
    const auto members = communities.members(g.community);
    for (std::uint32_t j = 0; j < members.size(); ++j) {
      EXPECT_TRUE(g.mask_of(members[j]) & (1ULL << j))
          << "member " << members[j] << " missing its own bit";
    }
  }
}

TEST(RicSampler, CertainGraphMatchesExactReachability) {
  // Deterministic edges: the sample must contain exactly the backward-
  // reachable nodes of each member, with exact masks.
  GraphBuilder builder;
  builder.reserve_nodes(6);
  builder.add_edge(2, 0, 1.0);   // 2 reaches member 0
  builder.add_edge(3, 2, 1.0);   // 3 -> 2 -> 0
  builder.add_edge(3, 1, 1.0);   // 3 reaches both members
  const Graph graph = builder.build();
  CommunitySet communities(6, {{0, 1}});
  RicSampler sampler(graph, communities);
  Rng rng(2);
  const RicSample g = sampler.generate_for_community(0, rng);

  EXPECT_EQ(g.community, 0U);
  EXPECT_EQ(g.member_count, 2U);
  EXPECT_EQ(g.mask_of(0), 0b01ULL);          // member 0 reaches itself
  EXPECT_EQ(g.mask_of(1), 0b10ULL);          // member 1 reaches itself
  EXPECT_EQ(g.mask_of(2), 0b01ULL);          // 2 -> 0
  EXPECT_EQ(g.mask_of(3), 0b11ULL);          // 3 -> both
  EXPECT_EQ(g.mask_of(4), 0ULL);             // untouched
  EXPECT_EQ(g.touching.size(), 4U);
}

TEST(RicSampler, MembersReachedAndInfluence) {
  GraphBuilder builder;
  builder.reserve_nodes(4);
  builder.add_edge(2, 0, 1.0).add_edge(3, 1, 1.0);
  const Graph graph = builder.build();
  CommunitySet communities(4, {{0, 1}});
  communities.set_threshold(0, 2);
  RicSampler sampler(graph, communities);
  Rng rng(3);
  const RicSample g = sampler.generate_for_community(0, rng);

  const std::vector<NodeId> just_two{2};
  const std::vector<NodeId> both{2, 3};
  EXPECT_EQ(g.members_reached(just_two), 1U);
  EXPECT_EQ(g.members_reached(both), 2U);
  EXPECT_FALSE(g.influenced_by(just_two));
  EXPECT_TRUE(g.influenced_by(both));
}

TEST(RicSampler, SourceDistributionFollowsBenefits) {
  const Graph graph = test::path_graph(6, 0.1);
  CommunitySet communities = two_communities();
  communities.set_benefit(0, 1.0);
  communities.set_benefit(1, 3.0);
  RicSampler sampler(graph, communities);
  Rng rng(4);
  int first = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    first += (sampler.generate(rng).community == 0);
  }
  EXPECT_NEAR(static_cast<double>(first) / kDraws, 0.25, 0.01);
}

TEST(RicSampler, EdgeProbabilityRespected) {
  // Single edge relay -> member with p = 0.3: the relay must appear in
  // ~30% of samples.
  GraphBuilder builder;
  builder.reserve_nodes(2);
  builder.add_edge(1, 0, 0.3);
  const Graph graph = builder.build();
  CommunitySet communities(2, {{0}});
  RicSampler sampler(graph, communities);
  Rng rng(5);
  int touched = 0;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) {
    touched += (sampler.generate(rng).mask_of(1) != 0);
  }
  EXPECT_NEAR(static_cast<double>(touched) / kDraws, 0.3, 0.01);
}

TEST(RicSampler, ThresholdCopiedFromCommunity) {
  const Graph graph = test::path_graph(6, 0.5);
  CommunitySet communities = two_communities();
  communities.set_threshold(1, 2);
  RicSampler sampler(graph, communities);
  Rng rng(6);
  const RicSample g = sampler.generate_for_community(1, rng);
  EXPECT_EQ(g.threshold, 2U);
}

TEST(RicSampler, TouchingSortedByNode) {
  const Graph graph = test::complete_graph(8, 0.5);
  CommunitySet communities(8, {{0, 1, 2}});
  RicSampler sampler(graph, communities);
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const RicSample g = sampler.generate(rng);
    for (std::size_t j = 1; j < g.touching.size(); ++j) {
      EXPECT_LT(g.touching[j - 1].first, g.touching[j].first);
    }
  }
}

TEST(RicSampler, VisitEpochWrapRefillsAndRestarts) {
  // Regression for the epoch-counter wrap branch: at epoch_ == UINT32_MAX
  // the per-node visit marks could alias a restarted counter, so the
  // sampler must refill them and restart at 1 — and the samples generated
  // across the wrap must stay exact.
  GraphBuilder builder;
  builder.reserve_nodes(6);
  builder.add_edge(2, 0, 1.0);  // 2 -> member 0
  builder.add_edge(3, 2, 1.0);  // 3 -> 2 -> 0
  const Graph graph = builder.build();
  CommunitySet communities(6, {{0, 1}, {4, 5}});
  RicSampler sampler(graph, communities);
  Rng rng(9);

  // Populate the visit marks with a pre-wrap epoch, then force the wrap.
  const RicSample before = sampler.generate_for_community(0, rng);
  EXPECT_EQ(before.mask_of(3), 0b01ULL);
  sampler.set_visit_epoch_for_test(std::numeric_limits<std::uint32_t>::max());

  const RicSample wrapped = sampler.generate_for_community(0, rng);
  EXPECT_EQ(sampler.visit_epoch_for_test(), 1U);
  EXPECT_EQ(wrapped.mask_of(0), 0b01ULL);
  EXPECT_EQ(wrapped.mask_of(1), 0b10ULL);
  EXPECT_EQ(wrapped.mask_of(2), 0b01ULL);
  EXPECT_EQ(wrapped.mask_of(3), 0b01ULL);
  EXPECT_EQ(wrapped.touching.size(), 4U);

  // Marks stamped with the old large epochs must not leak into the
  // restarted counter's samples.
  const RicSample after = sampler.generate_for_community(1, rng);
  EXPECT_EQ(sampler.visit_epoch_for_test(), 2U);
  EXPECT_EQ(after.touching.size(), 2U);  // {4, 5}: no in-edges
  EXPECT_EQ(after.mask_of(2), 0ULL);
  EXPECT_EQ(after.mask_of(3), 0ULL);
}

TEST(RicSampler, GenerateIntoMatchesGenerate) {
  // The arena-direct path must emit exactly the touching pairs and
  // metadata of the RicSample path, including when the arena already holds
  // earlier samples (appends, no clobbering).
  const Graph graph = test::complete_graph(10, 0.4);
  CommunitySet communities(10, {{0, 1, 2}, {5, 6}});
  communities.set_threshold(1, 2);
  RicSampler by_value(graph, communities);
  RicSampler arena_direct(graph, communities);
  Rng rng_a(10);
  Rng rng_b(10);
  RicSampler::TouchArena arena;
  std::size_t consumed = 0;
  for (int i = 0; i < 40; ++i) {
    const RicSample expected = by_value.generate(rng_a);
    const RicSampleMeta meta = arena_direct.generate_into(rng_b, arena);
    EXPECT_EQ(meta.community, expected.community);
    EXPECT_EQ(meta.threshold, expected.threshold);
    EXPECT_EQ(meta.member_count, expected.member_count);
    ASSERT_EQ(meta.touch_count, expected.touching.size());
    ASSERT_EQ(arena.size(), consumed + meta.touch_count);
    for (std::size_t j = 0; j < expected.touching.size(); ++j) {
      EXPECT_EQ(arena[consumed + j], expected.touching[j]);
    }
    consumed = arena.size();
  }
}

TEST(RicSampler, ScratchStateResetsBetweenSamples) {
  // Alternate between communities; leakage across samples would corrupt
  // masks or touching sets. Deterministic graph makes this exact.
  GraphBuilder builder;
  builder.reserve_nodes(6);
  builder.add_edge(2, 0, 1.0);
  builder.add_edge(3, 4, 1.0);
  const Graph graph = builder.build();
  CommunitySet communities(6, {{0, 1}, {4, 5}});
  RicSampler sampler(graph, communities);
  Rng rng(8);
  for (int round = 0; round < 25; ++round) {
    const RicSample a = sampler.generate_for_community(0, rng);
    EXPECT_EQ(a.touching.size(), 3U);  // {0, 1, 2}
    EXPECT_EQ(a.mask_of(3), 0ULL);
    const RicSample b = sampler.generate_for_community(1, rng);
    EXPECT_EQ(b.touching.size(), 3U);  // {3, 4, 5}
    EXPECT_EQ(b.mask_of(2), 0ULL);
    EXPECT_EQ(b.mask_of(3), 0b01ULL);  // 3 -> member 4 (index 0 of C1)
  }
}

}  // namespace
}  // namespace imc
