#include "sampling/rr_set.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "diffusion/monte_carlo.h"
#include "graph/algorithms.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(RrSet, ContainsRoot) {
  const Graph graph = test::cycle_graph(8, 0.5);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const RrSet set = generate_rr_set(graph, rng);
    EXPECT_TRUE(std::binary_search(set.nodes.begin(), set.nodes.end(),
                                   set.root));
  }
}

TEST(RrSet, CertainGraphGivesBackwardReachable) {
  const Graph graph = test::path_graph(6, 1.0);
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const RrSet set = generate_rr_set(graph, rng);
    const std::vector<NodeId> root{set.root};
    EXPECT_EQ(set.nodes, backward_reachable(graph, root));
  }
}

TEST(RrSet, ZeroWeightGivesSingleton) {
  const Graph graph = test::complete_graph(5, 0.0);
  Rng rng(3);
  const RrSet set = generate_rr_set(graph, rng);
  EXPECT_EQ(set.nodes.size(), 1U);
}

TEST(RrSet, EmptyGraphThrows) {
  Graph graph;
  Rng rng(4);
  EXPECT_THROW((void)generate_rr_set(graph, rng), std::invalid_argument);
}

TEST(RrPool, IndexConsistentWithSets) {
  const Graph graph = test::cycle_graph(10, 0.5);
  RrPool pool(graph);
  Rng rng(5);
  pool.generate(200, rng);
  ASSERT_EQ(pool.size(), 200U);
  for (std::uint32_t i = 0; i < pool.size(); ++i) {
    for (const NodeId v : pool.set(i).nodes) {
      const auto& containing = pool.sets_containing(v);
      EXPECT_NE(std::find(containing.begin(), containing.end(), i),
                containing.end());
    }
  }
}

TEST(RrPool, SpreadEstimateMatchesMonteCarlo) {
  // The RIS identity: spread(S) = n * P(S hits a random RR set).
  const Graph graph = test::cycle_graph(16, 0.4);
  RrPool pool(graph);
  Rng rng(6);
  pool.generate(40000, rng);
  const std::vector<NodeId> seeds{0, 8};
  MonteCarloOptions options;
  options.simulations = 40000;
  const double mc = mc_expected_spread(graph, seeds, options);
  EXPECT_NEAR(pool.estimate_spread(seeds), mc, mc * 0.05);
}

TEST(RrPool, EmptyPoolEstimatesZero) {
  const Graph graph = test::path_graph(3);
  RrPool pool(graph);
  const std::vector<NodeId> seeds{0};
  EXPECT_DOUBLE_EQ(pool.estimate_spread(seeds), 0.0);
}

TEST(RrPool, IncrementalGeneration) {
  const Graph graph = test::path_graph(5, 0.5);
  RrPool pool(graph);
  Rng rng(7);
  pool.generate(10, rng);
  pool.generate(15, rng);
  EXPECT_EQ(pool.size(), 25U);
}

}  // namespace
}  // namespace imc
