// Distributional guard for the sampling-engine overhaul: the influenced
// benefit estimated from RIC pools (geometric-skip realization, bit-parallel
// mask propagation, arena-direct growth) must match forward Monte-Carlo
// simulation within the concentration-bound tolerance used by the Lemma 1
// test — for IC on uniform in-weights (the geometric-skip fast path), IC on
// mixed in-weights (the per-edge Bernoulli fallback), and LT. A drift here
// means the sampler's realization distribution changed, which no golden-seed
// pin can distinguish from an intentional RNG-contract bump.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "community/threshold_policy.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_pool.h"
#include "test_support.h"

namespace imc {
namespace {

EdgeList fixture_edges(NodeId* node_count) {
  Rng rng(11);
  SbmConfig sbm;
  sbm.nodes = 60;
  sbm.blocks = 6;
  sbm.p_in = 0.3;
  sbm.p_out = 0.02;
  *node_count = sbm.nodes;
  return sbm_edges(sbm, rng);
}

CommunitySet fixture_communities(NodeId node_count) {
  CommunitySet communities = test::chunk_communities(node_count, 6);
  apply_population_benefits(communities);
  apply_fraction_thresholds(communities, 0.5);
  return communities;
}

void expect_pool_matches_forward_mc(const Graph& graph,
                                    const CommunitySet& communities,
                                    DiffusionModel model) {
  RicPool pool(graph, communities, model);
  pool.grow(40000, 5);

  MonteCarloOptions mc;
  mc.simulations = 40000;
  mc.model = model;
  const std::vector<NodeId> seeds{0, 13, 27};
  const double forward = mc_expected_benefit(graph, communities, seeds, mc);
  const double reverse = pool.c_hat(seeds);
  EXPECT_NEAR(reverse, forward, std::max(0.5, forward * 0.06))
      << "RIC estimate drifted from forward simulation";
}

TEST(SamplingEquivalence, IcUniformWeightsGeometricSkipPath) {
  NodeId n = 0;
  EdgeList edges = fixture_edges(&n);
  apply_uniform_weights(edges, 0.15);
  const Graph graph(n, edges);
  // Uniform weights put EVERY node on the geometric-skip path.
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_TRUE(graph.in_weights_uniform(v)) << "node " << v;
  }
  expect_pool_matches_forward_mc(graph, fixture_communities(n),
                                 DiffusionModel::kIndependentCascade);
}

TEST(SamplingEquivalence, IcMixedWeightsPerEdgeFallbackPath) {
  NodeId n = 0;
  EdgeList edges = fixture_edges(&n);
  Rng weight_rng(3);
  apply_trivalency_weights(edges, weight_rng);
  const Graph graph(n, edges);
  // Trivalency draws per-edge probabilities from {0.1, 0.01, 0.001}, so
  // nodes with in-degree > 1 almost surely mix weights — make sure the
  // fallback path is actually what this test exercises.
  NodeId mixed = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!graph.in_weights_uniform(v)) ++mixed;
  }
  ASSERT_GT(mixed, n / 2) << "fixture no longer exercises the fallback path";
  expect_pool_matches_forward_mc(graph, fixture_communities(n),
                                 DiffusionModel::kIndependentCascade);
}

TEST(SamplingEquivalence, LinearThresholdLiveEdgePath) {
  NodeId n = 0;
  EdgeList edges = fixture_edges(&n);
  apply_weighted_cascade(edges, n);  // incoming sums = 1: valid LT weights
  const Graph graph(n, edges);
  expect_pool_matches_forward_mc(graph, fixture_communities(n),
                                 DiffusionModel::kLinearThreshold);
}

}  // namespace
}  // namespace imc
