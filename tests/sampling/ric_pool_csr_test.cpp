// Equivalence tests for the flat CSR/SoA pool layout: after any interleaving
// of grow() (serial and parallel) and append(), the CSR inverted index, the
// sample-major arena, the appearance counts, and the community frequencies
// must match a straightforward nested-vector reference rebuilt from the
// materialized per-sample views. Also pins the uint32 sample-id overflow
// guard.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "community/threshold_policy.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_pool.h"
#include "sampling/ric_sample.h"
#include "test_support.h"
#include "util/rng.h"

namespace imc {
namespace {

struct RefTouch {
  std::uint32_t sample;
  std::uint32_t threshold;
  std::uint64_t mask;
};

/// The pre-refactor representation: one vector of touches per node, built
/// by a direct walk over the samples in insertion order.
std::vector<std::vector<RefTouch>> reference_index(const RicPool& pool) {
  std::vector<std::vector<RefTouch>> index(pool.graph().node_count());
  for (std::uint32_t g = 0; g < pool.size(); ++g) {
    const RicSample& sample = pool.sample(g);
    for (const auto& [node, mask] : sample.touching) {
      index[node].push_back(RefTouch{g, sample.threshold, mask});
    }
  }
  return index;
}

void expect_matches_reference(const RicPool& pool) {
  const auto reference = reference_index(pool);
  const auto offsets = pool.touch_offsets();
  ASSERT_EQ(offsets.size(), pool.graph().node_count() + 1);
  EXPECT_EQ(offsets.front(), 0U);

  std::uint64_t total = 0;
  for (NodeId v = 0; v < pool.graph().node_count(); ++v) {
    ASSERT_LE(offsets[v], offsets[v + 1]) << "offsets must be monotone";
    const auto touches = pool.touches_of(v);
    ASSERT_EQ(touches.size(), reference[v].size()) << "node " << v;
    EXPECT_EQ(pool.appearance_count(v), reference[v].size());
    for (std::size_t i = 0; i < touches.size(); ++i) {
      EXPECT_EQ(touches[i].sample, reference[v][i].sample)
          << "node " << v << " touch " << i;
      EXPECT_EQ(touches[i].threshold, reference[v][i].threshold);
      EXPECT_EQ(touches[i].mask, reference[v][i].mask);
    }
    total += touches.size();
  }
  EXPECT_EQ(offsets.back(), total);
  EXPECT_EQ(pool.touch_arena().size(), total);

  // The sample-major arena serves exactly the AoS touching lists.
  for (std::uint32_t g = 0; g < pool.size(); ++g) {
    const auto span = pool.sample_touches(g);
    const auto& aos = pool.sample(g).touching;
    ASSERT_EQ(span.size(), aos.size()) << "sample " << g;
    for (std::size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(span[i].first, aos[i].first);
      EXPECT_EQ(span[i].second, aos[i].second);
    }
    EXPECT_EQ(pool.threshold_of(g), pool.sample(g).threshold);
    EXPECT_EQ(pool.source_communities()[g], pool.sample(g).community);
  }

  // Community frequencies match a direct count of source communities.
  std::vector<std::uint32_t> frequency(pool.communities().size(), 0);
  for (std::uint32_t g = 0; g < pool.size(); ++g) {
    ++frequency[pool.sample(g).community];
  }
  for (CommunityId c = 0; c < pool.communities().size(); ++c) {
    EXPECT_EQ(pool.community_frequency(c), frequency[c]) << "community " << c;
  }
}

class RicPoolCsrTest : public ::testing::Test {
 protected:
  static Graph make_graph() {
    Rng rng(42);
    BarabasiAlbertConfig config;
    config.nodes = 80;
    config.attach = 3;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_weighted_cascade(edges, config.nodes);
    return Graph(config.nodes, edges);
  }

  static CommunitySet make_communities() {
    CommunitySet communities = test::chunk_communities(80, 5);
    apply_constant_thresholds(communities, 2);
    apply_population_benefits(communities);
    return communities;
  }

  Graph graph_ = make_graph();
  CommunitySet communities_ = make_communities();
};

TEST_F(RicPoolCsrTest, InterleavedGrowAndAppendMatchesReference) {
  RicPool pool(graph_, communities_);
  RicSampler sampler(graph_, communities_);
  Rng rng(7);

  // Interleave serial growth, parallel growth, and single appends; the
  // index must match the reference after every step, exercising both the
  // eager merge (grow) and the materialize-on-demand path (append).
  pool.grow(60, 11, /*parallel=*/false);
  expect_matches_reference(pool);

  for (int i = 0; i < 17; ++i) pool.append(sampler.generate(rng));
  expect_matches_reference(pool);

  pool.grow(90, 11, /*parallel=*/true);
  expect_matches_reference(pool);

  for (int i = 0; i < 5; ++i) pool.append(sampler.generate(rng));
  pool.grow(40, 23, /*parallel=*/true);  // merge with appends pending
  expect_matches_reference(pool);

  pool.grow(25, 31, /*parallel=*/false);
  for (int i = 0; i < 9; ++i) pool.append(sampler.generate(rng));
  expect_matches_reference(pool);
}

TEST_F(RicPoolCsrTest, SerialAndParallelGrowthProduceIdenticalPools) {
  RicPool serial(graph_, communities_);
  serial.grow(150, 13, /*parallel=*/false);
  RicPool parallel(graph_, communities_);
  parallel.grow(70, 13, /*parallel=*/true);
  parallel.grow(80, 13, /*parallel=*/true);

  ASSERT_EQ(serial.size(), parallel.size());
  const auto serial_offsets = serial.touch_offsets();
  const auto parallel_offsets = parallel.touch_offsets();
  ASSERT_EQ(serial_offsets.size(), parallel_offsets.size());
  for (std::size_t i = 0; i < serial_offsets.size(); ++i) {
    EXPECT_EQ(serial_offsets[i], parallel_offsets[i]);
  }
  const auto serial_arena = serial.touch_arena();
  const auto parallel_arena = parallel.touch_arena();
  ASSERT_EQ(serial_arena.size(), parallel_arena.size());
  for (std::size_t i = 0; i < serial_arena.size(); ++i) {
    EXPECT_EQ(serial_arena[i].sample, parallel_arena[i].sample);
    EXPECT_EQ(serial_arena[i].threshold, parallel_arena[i].threshold);
    EXPECT_EQ(serial_arena[i].mask, parallel_arena[i].mask);
  }
}

TEST_F(RicPoolCsrTest, GrowEpochWatermarksEveryGrowthPath) {
  RicPool pool(graph_, communities_);
  const RicPool::PoolEpoch start = pool.grow_epoch();
  EXPECT_EQ(start.samples, 0U);
  EXPECT_EQ(pool.samples_since(start), 0U);

  pool.grow(60, 11, /*parallel=*/false);
  const RicPool::PoolEpoch after_serial = pool.grow_epoch();
  EXPECT_EQ(pool.samples_since(start), 60U);
  EXPECT_EQ(pool.samples_since(after_serial), 0U);
  EXPECT_FALSE(start == after_serial);

  // append() and parallel grow() advance the watermark too.
  RicSampler sampler(graph_, communities_);
  Rng rng(7);
  pool.append(sampler.generate(rng));
  EXPECT_EQ(pool.samples_since(after_serial), 1U);
  const RicPool::PoolEpoch after_append = pool.grow_epoch();
  EXPECT_FALSE(after_append == after_serial);

  pool.grow(40, 23, /*parallel=*/true);
  EXPECT_EQ(pool.samples_since(after_append), 40U);
  EXPECT_EQ(pool.samples_since(start), 101U);
  EXPECT_TRUE(pool.grow_epoch() == pool.grow_epoch());
}

TEST_F(RicPoolCsrTest, SamplesSinceRejectsForeignOrNewerEpochs) {
  RicPool pool(graph_, communities_);
  pool.grow(50, 11, /*parallel=*/false);
  RicSampler sampler(graph_, communities_);
  Rng rng(7);
  for (int i = 0; i < 3; ++i) pool.append(sampler.generate(rng));

  // An epoch from a pool with MORE samples than this one cannot be ours.
  RicPool bigger(graph_, communities_);
  bigger.grow(80, 3, /*parallel=*/false);
  bigger.grow(80, 3, /*parallel=*/false);
  EXPECT_THROW((void)pool.samples_since(bigger.grow_epoch()),
               std::invalid_argument);
  // ... and a foreign watermark whose sample count fits is still caught by
  // the grow counter (pool has 4 growth events, bigger only 2).
  EXPECT_THROW((void)bigger.samples_since(pool.grow_epoch()),
               std::invalid_argument)
      << "epoch with matching samples but foreign grow history accepted";
}

TEST_F(RicPoolCsrTest, GrowRejectsSampleIdOverflow) {
  RicPool pool(graph_, communities_);
  const std::uint64_t too_many =
      static_cast<std::uint64_t>(std::numeric_limits<std::uint32_t>::max()) +
      1;
  // The guard must fire BEFORE any generation or allocation happens.
  EXPECT_THROW(pool.grow(too_many, 1), std::length_error);
  try {
    pool.grow(too_many, 1);
  } catch (const std::length_error& e) {
    EXPECT_NE(std::string(e.what()).find("32-bit"), std::string::npos)
        << "overflow message should explain the sample-id limit: "
        << e.what();
  }
  EXPECT_EQ(pool.size(), 0U);
}

}  // namespace
}  // namespace imc
