#include "sampling/pool_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "community/threshold_policy.h"
#include "test_support.h"

namespace imc {
namespace {

struct Fixture {
  Graph graph;
  CommunitySet communities;

  Fixture() {
    graph = test::cycle_graph(12, 0.5);
    communities = test::chunk_communities(12, 3);
    apply_population_benefits(communities);
    apply_constant_thresholds(communities, 2);
  }
};

TEST(PoolIo, RoundTripPreservesSamplesAndScores) {
  const Fixture fixture;
  RicPool original(fixture.graph, fixture.communities);
  original.grow(250, 9);

  std::stringstream buffer;
  write_ric_pool(buffer, original);
  const RicPool loaded =
      read_ric_pool(buffer, fixture.graph, fixture.communities);

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.model(), original.model());
  for (std::uint32_t g = 0; g < original.size(); ++g) {
    EXPECT_EQ(loaded.sample(g).community, original.sample(g).community);
    EXPECT_EQ(loaded.sample(g).threshold, original.sample(g).threshold);
    EXPECT_EQ(loaded.sample(g).touching, original.sample(g).touching);
  }
  // Objectives computed on the reloaded pool are identical.
  const std::vector<NodeId> seeds{0, 5, 9};
  EXPECT_DOUBLE_EQ(loaded.c_hat(seeds), original.c_hat(seeds));
  EXPECT_DOUBLE_EQ(loaded.nu(seeds), original.nu(seeds));
}

TEST(PoolIo, RoundTripIsBitIdenticalDownToTheArenas) {
  // Stronger than score equality: a reloaded pool must rebuild the exact
  // same flat representation — CSR offsets and touch arena, sample-major
  // metadata, and maintained counters — so that selection on a reloaded
  // pool is bit-for-bit the run that produced it (MAXR determinism).
  const Fixture fixture;
  RicPool original(fixture.graph, fixture.communities);
  original.grow(250, 41);

  std::stringstream buffer;
  write_ric_pool(buffer, original);
  const RicPool loaded =
      read_ric_pool(buffer, fixture.graph, fixture.communities);

  // Sample-major metadata.
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_TRUE(std::equal(loaded.thresholds().begin(),
                         loaded.thresholds().end(),
                         original.thresholds().begin(),
                         original.thresholds().end()));
  EXPECT_TRUE(std::equal(loaded.source_communities().begin(),
                         loaded.source_communities().end(),
                         original.source_communities().begin(),
                         original.source_communities().end()));
  for (std::uint32_t g = 0; g < original.size(); ++g) {
    const auto mine = loaded.sample_touches(g);
    const auto theirs = original.sample_touches(g);
    ASSERT_TRUE(std::equal(mine.begin(), mine.end(), theirs.begin(),
                           theirs.end()))
        << "sample-major arena diverges at sample " << g;
  }

  // CSR index.
  ASSERT_TRUE(std::equal(loaded.touch_offsets().begin(),
                         loaded.touch_offsets().end(),
                         original.touch_offsets().begin(),
                         original.touch_offsets().end()));
  const auto arena = loaded.touch_arena();
  const auto expected = original.touch_arena();
  ASSERT_EQ(arena.size(), expected.size());
  for (std::size_t i = 0; i < arena.size(); ++i) {
    EXPECT_EQ(arena[i].sample, expected[i].sample) << "arena slot " << i;
    EXPECT_EQ(arena[i].threshold, expected[i].threshold)
        << "arena slot " << i;
    EXPECT_EQ(arena[i].mask, expected[i].mask) << "arena slot " << i;
  }

  // Maintained counters.
  EXPECT_TRUE(std::equal(loaded.community_frequencies().begin(),
                         loaded.community_frequencies().end(),
                         original.community_frequencies().begin(),
                         original.community_frequencies().end()));
}

TEST(PoolIo, LtModelTagRoundTrips) {
  const Graph graph = test::path_graph(6, 1.0);
  CommunitySet communities = test::chunk_communities(6, 2);
  RicPool original(graph, communities, DiffusionModel::kLinearThreshold);
  original.grow(40, 3);
  std::stringstream buffer;
  write_ric_pool(buffer, original);
  const RicPool loaded = read_ric_pool(buffer, graph, communities);
  EXPECT_EQ(loaded.model(), DiffusionModel::kLinearThreshold);
  EXPECT_EQ(loaded.size(), 40U);
}

TEST(PoolIo, RejectsWrongGraph) {
  const Fixture fixture;
  RicPool pool(fixture.graph, fixture.communities);
  pool.grow(20, 2);
  std::stringstream buffer;
  write_ric_pool(buffer, pool);

  const Graph other = test::cycle_graph(20, 0.5);
  const CommunitySet other_coms = test::chunk_communities(20, 4);
  EXPECT_THROW((void)read_ric_pool(buffer, other, other_coms),
               std::runtime_error);
}

TEST(PoolIo, RejectsMalformedInput) {
  const Fixture fixture;
  {
    std::istringstream in("wrong header\n");
    EXPECT_THROW(
        (void)read_ric_pool(in, fixture.graph, fixture.communities),
        std::runtime_error);
  }
  {
    std::istringstream in(
        "imc-ric-pool v1\nnodes 12 samples 1 model zz\n");
    EXPECT_THROW(
        (void)read_ric_pool(in, fixture.graph, fixture.communities),
        std::runtime_error);
  }
  {
    // Metadata says one sample, body has none.
    std::istringstream in(
        "imc-ric-pool v1\nnodes 12 samples 1 model ic\n");
    EXPECT_THROW(
        (void)read_ric_pool(in, fixture.graph, fixture.communities),
        std::runtime_error);
  }
  {
    // Touching node out of range.
    std::istringstream in(
        "imc-ric-pool v1\nnodes 12 samples 1 model ic\n"
        "sample 0 2 1 99 1\n");
    EXPECT_THROW(
        (void)read_ric_pool(in, fixture.graph, fixture.communities),
        std::runtime_error);
  }
}

/// Runs the loader on `text` and returns the error message (failing the
/// test when it unexpectedly succeeds) — the corrupted-corpus tests pin
/// exact diagnostics, not just "some exception".
std::string load_error(const Fixture& fixture, const std::string& text) {
  std::istringstream in(text);
  try {
    (void)read_ric_pool(in, fixture.graph, fixture.communities);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  ADD_FAILURE() << "loader accepted corrupt input: " << text;
  return "";
}

TEST(PoolIo, RejectsOutOfRangeSampleCommunity) {
  // Regression: the loader used to clamp an out-of-range community id to
  // community 0 when computing member_count — corrupt input was silently
  // reinterpreted instead of rejected.
  const Fixture fixture;
  EXPECT_EQ(load_error(fixture,
                       "imc-ric-pool v1\nnodes 12 samples 1 model ic\n"
                       "sample 7 2 1 0 1\n"),
            "ric pool file, line 3: sample community id out of range");
}

TEST(PoolIo, RejectsTrailingTokensAfterTouchPairs) {
  // Regression: tokens after the declared touch pairs were ignored, so a
  // sample line whose count disagreed with its data loaded "successfully"
  // with the tail dropped.
  const Fixture fixture;
  EXPECT_EQ(load_error(fixture,
                       "imc-ric-pool v1\nnodes 12 samples 1 model ic\n"
                       "sample 0 2 1 0 1 5 3\n"),
            "ric pool file, line 3: trailing tokens after the declared "
            "touch pairs");
}

TEST(PoolIo, WriterPreservesCallerStreamFormatting) {
  // Regression: write_ric_pool left the caller's stream in std::dec (and
  // mid-write, std::hex), clobbering whatever formatting state the caller
  // had set around the call.
  const Fixture fixture;
  RicPool pool(fixture.graph, fixture.communities);
  pool.grow(10, 4);

  std::ostringstream out;
  out << std::hex << std::uppercase;
  const auto before = out.flags();
  write_ric_pool(out, pool);
  EXPECT_EQ(out.flags(), before);
  out.str("");
  out << 255;
  EXPECT_EQ(out.str(), "FF");
}

TEST(PoolIo, SaveReportsFailureOnUnwritablePath) {
  const Fixture fixture;
  RicPool pool(fixture.graph, fixture.communities);
  pool.grow(5, 1);
  EXPECT_THROW(save_ric_pool("/no/such/dir/pool.txt", pool),
               std::runtime_error);
}

TEST(PoolIo, FileRoundTrip) {
  const Fixture fixture;
  RicPool pool(fixture.graph, fixture.communities);
  pool.grow(30, 5);
  const std::string path = ::testing::TempDir() + "/imc_pool_test.txt";
  save_ric_pool(path, pool);
  const RicPool loaded =
      load_ric_pool(path, fixture.graph, fixture.communities);
  EXPECT_EQ(loaded.size(), 30U);
  std::remove(path.c_str());
  EXPECT_THROW(
      (void)load_ric_pool("/no/such/pool.txt", fixture.graph,
                          fixture.communities),
      std::runtime_error);
}

TEST(PoolAppend, ValidatesInput) {
  const Fixture fixture;
  RicPool pool(fixture.graph, fixture.communities);
  RicSample bad_community;
  bad_community.community = 99;
  bad_community.threshold = 1;
  EXPECT_THROW(pool.append(bad_community), std::invalid_argument);

  RicSample bad_threshold;
  bad_threshold.community = 0;
  bad_threshold.threshold = 0;
  EXPECT_THROW(pool.append(bad_threshold), std::invalid_argument);

  RicSample good;
  good.community = 0;
  good.threshold = 2;
  good.member_count = 3;
  good.touching = {{0, 0b1ULL}, {1, 0b10ULL}};
  pool.append(good);
  EXPECT_EQ(pool.size(), 1U);
  EXPECT_EQ(pool.appearance_count(0), 1U);
}

}  // namespace
}  // namespace imc
