#include "sampling/ric_pool.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "community/threshold_policy.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

Graph make_dataset_like_graph() {
  Rng rng(123);
  BarabasiAlbertConfig config;
  config.nodes = 80;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  return Graph(config.nodes, edges);
}

TEST(RicPool, GrowAndIndexConsistency) {
  const Graph graph = test::cycle_graph(12, 0.5);
  const CommunitySet communities = test::chunk_communities(12, 3);
  RicPool pool(graph, communities);
  pool.grow(300, /*seed=*/1);
  ASSERT_EQ(pool.size(), 300U);
  // Inverted index agrees with per-sample touching lists.
  for (std::uint32_t g = 0; g < pool.size(); ++g) {
    for (const auto& [node, mask] : pool.sample(g).touching) {
      bool found = false;
      for (const RicPool::Touch& touch : pool.touches_of(node)) {
        if (touch.sample == g) {
          EXPECT_EQ(touch.mask, mask);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(RicPool, GrowthIsDeterministicAndChunkingInvariant) {
  const Graph graph = test::cycle_graph(10, 0.4);
  const CommunitySet communities = test::chunk_communities(10, 2);
  RicPool once(graph, communities);
  once.grow(64, 7, /*parallel=*/true);
  RicPool twice(graph, communities);
  twice.grow(40, 7, /*parallel=*/false);
  twice.grow(24, 7, /*parallel=*/false);
  ASSERT_EQ(once.size(), twice.size());
  for (std::uint32_t g = 0; g < once.size(); ++g) {
    EXPECT_EQ(once.sample(g).community, twice.sample(g).community);
    EXPECT_EQ(once.sample(g).touching, twice.sample(g).touching);
  }
}

TEST(RicPool, CHatMatchesManualCount) {
  const Graph graph = test::path_graph(6, 1.0);
  CommunitySet communities(6, {{2}, {5}});
  RicPool pool(graph, communities);
  pool.grow(500, 3);
  // Seeding node 0 reaches member 2 (certain path) but that's it for C0;
  // node 0 also reaches 5. All samples are influenced by {0}.
  const std::vector<NodeId> seeds{0};
  EXPECT_EQ(pool.influenced_count(seeds), pool.size());
  EXPECT_DOUBLE_EQ(pool.c_hat(seeds), communities.total_benefit());
}

TEST(RicPool, Lemma1UnbiasedAgainstForwardMonteCarlo) {
  // ĉ_R(S) must estimate the same c(S) as forward IC simulation.
  Rng gen_rng(11);
  SbmConfig sbm;
  sbm.nodes = 60;
  sbm.blocks = 6;
  sbm.p_in = 0.3;
  sbm.p_out = 0.02;
  EdgeList edges = sbm_edges(sbm, gen_rng);
  apply_uniform_weights(edges, 0.15);
  const Graph graph(sbm.nodes, edges);

  CommunitySet communities = test::chunk_communities(60, 6);
  apply_population_benefits(communities);
  apply_fraction_thresholds(communities, 0.5);

  RicPool pool(graph, communities);
  pool.grow(60000, 5);

  MonteCarloOptions mc;
  mc.simulations = 60000;
  const std::vector<NodeId> seeds{0, 13, 27};
  const double forward = mc_expected_benefit(graph, communities, seeds, mc);
  const double reverse = pool.c_hat(seeds);
  EXPECT_NEAR(reverse, forward, std::max(0.5, forward * 0.06));
}

TEST(RicPool, NuUpperBoundsCHat) {
  const Graph graph = make_dataset_like_graph();
  CommunitySet communities = test::chunk_communities(graph.node_count(), 4);
  apply_constant_thresholds(communities, 2);
  RicPool pool(graph, communities);
  pool.grow(2000, 9);
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const auto seeds = rng.sample_without_replacement(
        graph.node_count(), 1 + static_cast<std::uint32_t>(rng.below(8)));
    EXPECT_GE(pool.nu(seeds) + 1e-9, pool.c_hat(seeds));
  }
}

TEST(RicPool, NuEqualsCHatWhenThresholdsAreOne) {
  const Graph graph = make_dataset_like_graph();
  CommunitySet communities = test::chunk_communities(graph.node_count(), 4);
  // default thresholds are 1
  RicPool pool(graph, communities);
  pool.grow(1500, 17);
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    const auto seeds = rng.sample_without_replacement(graph.node_count(), 5);
    EXPECT_NEAR(pool.nu(seeds), pool.c_hat(seeds), 1e-9);
  }
}

TEST(RicPool, CommunityFrequencyCountsSources) {
  const Graph graph = test::path_graph(8, 0.3);
  CommunitySet communities = test::chunk_communities(8, 4);
  communities.set_benefit(0, 9.0);  // heavily favor C0 in ρ
  communities.set_benefit(1, 1.0);
  RicPool pool(graph, communities);
  pool.grow(2000, 21);
  EXPECT_EQ(pool.community_frequency(0) + pool.community_frequency(1),
            pool.size());
  EXPECT_GT(pool.community_frequency(0), pool.community_frequency(1) * 5);
}

TEST(RicPool, CommunityFrequencyCountersMatchRecount) {
  // The O(1) counters maintained in grow/append must agree with a full
  // recount of the sample list, across multiple growth rounds and appends.
  const Graph graph = test::path_graph(8, 0.3);
  CommunitySet communities = test::chunk_communities(8, 4);
  RicPool pool(graph, communities);
  pool.grow(500, 31);
  pool.grow(700, 31);  // second round exercises incremental growth
  RicSample manual;
  manual.community = 1;
  manual.threshold = 1;
  pool.append(manual);

  std::vector<std::uint32_t> recount(communities.size(), 0);
  for (const CommunityId c : pool.source_communities()) ++recount[c];
  ASSERT_EQ(pool.community_frequencies().size(), recount.size());
  for (CommunityId c = 0; c < communities.size(); ++c) {
    EXPECT_EQ(pool.community_frequency(c), recount[c]) << "community " << c;
  }
  // Out-of-range community ids keep reporting zero, not throwing.
  EXPECT_EQ(pool.community_frequency(communities.size() + 5), 0U);
}

TEST(RicPool, EmptySeedSetScoresZero) {
  const Graph graph = test::path_graph(4, 0.5);
  const CommunitySet communities = test::chunk_communities(4, 2);
  RicPool pool(graph, communities);
  pool.grow(100, 23);
  const std::vector<NodeId> empty;
  EXPECT_DOUBLE_EQ(pool.c_hat(empty), 0.0);
  EXPECT_DOUBLE_EQ(pool.nu(empty), 0.0);
  EXPECT_EQ(pool.influenced_count(empty), 0U);
}

TEST(RicPool, EmptyPoolScoresZero) {
  const Graph graph = test::path_graph(4, 0.5);
  const CommunitySet communities = test::chunk_communities(4, 2);
  RicPool pool(graph, communities);
  const std::vector<NodeId> seeds{0};
  EXPECT_DOUBLE_EQ(pool.c_hat(seeds), 0.0);
  EXPECT_DOUBLE_EQ(pool.nu(seeds), 0.0);
}

// Regression tests for the append()-after-grow() audit: the deferred
// materialize-on-demand index must stay sound for hand-built samples.

TEST(RicPool, AppendZeroTouchSampleAfterGrowKeepsIndexConsistent) {
  const Graph graph = test::path_graph(4, 0.5);
  const CommunitySet communities = test::chunk_communities(4, 2);
  RicPool pool(graph, communities);
  pool.grow(20, 7);
  const std::uint32_t frequency_before = pool.community_frequency(0);

  // A realization can reach no node at all; such samples carry an empty
  // touching list and must flow through append + the deferred CSR merge
  // without corrupting offsets or counters.
  RicSample empty;
  empty.community = 0;
  empty.threshold = 1;
  empty.member_count = 2;
  pool.append(empty);

  ASSERT_EQ(pool.size(), 21U);
  EXPECT_EQ(pool.sample(20).touching.size(), 0U);
  EXPECT_EQ(pool.community_frequency(0), frequency_before + 1);
  // The zero-touch sample can never be influenced; scores still work.
  const std::vector<NodeId> seeds{0, 1, 2, 3};
  EXPECT_LE(pool.influenced_count(seeds), 20U);
}

TEST(RicPool, AppendRejectsMaskBitsBeyondPopulation) {
  const Graph graph = test::path_graph(4, 0.5);
  const CommunitySet communities = test::chunk_communities(4, 2);
  RicPool pool(graph, communities);
  // Community 0 has population 2, so only mask bits 0 and 1 are members.
  // A phantom bit would be popcounted toward h_g by every evaluator.
  RicSample phantom;
  phantom.community = 0;
  phantom.threshold = 2;
  phantom.member_count = 2;
  phantom.touching = {{0, 0b100ull}};
  EXPECT_THROW(pool.append(phantom), std::invalid_argument);
}

TEST(RicPool, AppendRejectsUnsortedOrDuplicateTouches) {
  const Graph graph = test::path_graph(4, 0.5);
  const CommunitySet communities = test::chunk_communities(4, 2);
  RicPool pool(graph, communities);
  RicSample duplicate;
  duplicate.community = 0;
  duplicate.threshold = 1;
  duplicate.member_count = 2;
  duplicate.touching = {{1, 1ull}, {1, 2ull}};
  EXPECT_THROW(pool.append(duplicate), std::invalid_argument);

  RicSample unsorted;
  unsorted.community = 0;
  unsorted.threshold = 1;
  unsorted.member_count = 2;
  unsorted.touching = {{2, 1ull}, {0, 1ull}};
  EXPECT_THROW(pool.append(unsorted), std::invalid_argument);
}

TEST(RicPool, EmptyCommunitiesAreRejectedBeforeTheyReachAPool) {
  // append() never has to guard against population-zero communities:
  // CommunitySet refuses to construct them in the first place.
  EXPECT_THROW(CommunitySet(4, {{0, 1}, {}}), std::invalid_argument);
}

}  // namespace
}  // namespace imc
